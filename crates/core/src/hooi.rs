//! Sequential HOOI (paper §2.2, Figure 2) driven by a TTM-tree — thin shims
//! over the [`crate::executor`] sweep loops on the strictly sequential
//! [`SeqBackend`].
//!
//! One invocation takes the input tensor and a current decomposition and
//! produces a new decomposition with the same core size and (weakly) smaller
//! error. The canonical Gram → EVD-truncation → TTM tree walk lives in
//! [`executor::hooi_sweep`] (shared with the rayon shared-memory and distsim
//! backends); this module only adapts it to the classic
//! decomposition-in/decomposition-out API.
//!
//! Kernels: every leaf Gram is the fused [`tucker_tensor::gram`] family (no
//! unfolding is ever materialized) and every TTM draws its output buffer
//! from a [`TtmWorkspace`]; intermediates are recycled as soon as their last
//! consumer finishes. With a warm workspace (see [`hooi_invocation_ws`] and
//! [`hooi_iterate`]) a steady-state invocation performs **zero tensor-sized
//! allocations** — enforced by the allocation-regression test below.

use crate::decomposition::TuckerDecomposition;
use crate::executor::{self, SeqBackend, SweepBackend, SweepStats};
use crate::meta::TuckerMeta;
use crate::tree::TtmTree;
use std::time::Duration;
use tucker_tensor::norm::fro_norm_sq;
use tucker_tensor::{DenseTensor, TtmWorkspace};

/// Timing breakdown of one sequential HOOI invocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct HooiTimings {
    /// Time in TTM kernels (the TTM component of the tree + the core chain).
    pub ttm: Duration,
    /// Time in Gram + EVD (the SVD component).
    pub svd: Duration,
}

impl HooiTimings {
    fn from_stats(stats: &SweepStats) -> Self {
        HooiTimings {
            ttm: stats.ttm_compute,
            svd: stats.svd,
        }
    }
}

/// Result of one HOOI invocation.
#[derive(Clone, Debug)]
pub struct HooiOutput {
    /// The new decomposition `{G̃; F̃₁, …, F̃_N}`.
    pub decomposition: TuckerDecomposition,
    /// Relative error of the new decomposition against the input tensor
    /// (computed from the core norm; the factors are orthonormal).
    pub error: f64,
    /// Timing breakdown.
    pub timings: HooiTimings,
}

/// Run one sweep function on a [`SeqBackend`] borrowing the caller's
/// workspace, repackaging the outcome as a [`HooiOutput`].
fn seq_invocation(
    t: &DenseTensor,
    meta: &TuckerMeta,
    ws: &mut TtmWorkspace,
    sweep: impl FnOnce(&mut SeqBackend) -> executor::SweepOutcome<DenseTensor>,
) -> HooiOutput {
    assert_eq!(t.shape(), meta.input(), "tensor does not match metadata");
    let mut b = SeqBackend::from_workspace(std::mem::take(ws));
    let out = sweep(&mut b);
    *ws = b.into_workspace();
    HooiOutput {
        decomposition: TuckerDecomposition::new(out.core, out.factors),
        error: out.stats.error,
        timings: HooiTimings::from_stats(&out.stats),
    }
}

/// Run one HOOI invocation of `tree` on `t`, starting from `current`, with a
/// throwaway [`TtmWorkspace`]. Iterating callers should hold a workspace and
/// use [`hooi_invocation_ws`] so buffers carry over between invocations.
///
/// # Panics
/// Panics if shapes are inconsistent or the tree is invalid for the
/// metadata's order.
pub fn hooi_invocation(
    t: &DenseTensor,
    meta: &TuckerMeta,
    current: &TuckerDecomposition,
    tree: &TtmTree,
) -> HooiOutput {
    hooi_invocation_ws(t, meta, current, tree, &mut TtmWorkspace::new())
}

/// [`hooi_invocation`] with an explicit workspace. Every intermediate and
/// the new core draw their buffers from `ws`; once the workspace is warm
/// (after one invocation, provided the caller recycles the superseded core),
/// an invocation performs zero tensor-sized allocations.
///
/// # Panics
/// Panics if shapes are inconsistent or the tree is invalid for the
/// metadata's order.
pub fn hooi_invocation_ws(
    t: &DenseTensor,
    meta: &TuckerMeta,
    current: &TuckerDecomposition,
    tree: &TtmTree,
    ws: &mut TtmWorkspace,
) -> HooiOutput {
    assert_eq!(
        current.factors.len(),
        meta.order(),
        "decomposition order mismatch"
    );
    let input_norm_sq = fro_norm_sq(t);
    seq_invocation(t, meta, ws, |b| {
        executor::hooi_sweep(b, t, meta, tree, &current.factors, input_norm_sq)
    })
}

/// Textbook Gauss–Seidel HOOI invocation (De Lathauwer et al.): modes are
/// updated one at a time and each TTM-chain uses the **latest** factors.
///
/// This variant cannot share intermediate tensors between chains (so it
/// performs the naive `N·(N−1)` TTMs), but it inherits the classic ALS
/// guarantee: the error is non-increasing across invocations. The tree-based
/// [`hooi_invocation`] is the paper's (faster, Jacobi-style) variant; this
/// one serves as the convergence reference and as an ablation point.
pub fn hooi_invocation_gauss_seidel(
    t: &DenseTensor,
    meta: &TuckerMeta,
    current: &TuckerDecomposition,
) -> HooiOutput {
    let input_norm_sq = fro_norm_sq(t);
    seq_invocation(t, meta, &mut TtmWorkspace::new(), |b| {
        executor::gauss_seidel_sweep(b, t, meta, &current.factors, input_norm_sq)
    })
}

/// Iterate HOOI until the error improvement drops below `tol` or
/// `max_iters` invocations have run. Returns the final output and the error
/// trace (one entry per invocation).
///
/// One [`TtmWorkspace`] (inside the backend) spans all invocations, and each
/// superseded core is recycled into it, so every iteration after the first
/// is free of tensor-sized allocations. The convergence check itself lives
/// in [`executor::hooi_loop`], shared with every backend.
pub fn hooi_iterate(
    t: &DenseTensor,
    meta: &TuckerMeta,
    init: TuckerDecomposition,
    tree: &TtmTree,
    max_iters: usize,
    tol: f64,
) -> (HooiOutput, Vec<f64>) {
    assert!(max_iters >= 1, "need at least one iteration");
    assert_eq!(t.shape(), meta.input(), "tensor does not match metadata");
    let input_norm_sq = fro_norm_sq(t);
    let mut b = SeqBackend::new();
    let init_factors = init.factors;
    // The init's core is superseded by the first sweep's; hand its buffer
    // to the pool up front.
    b.recycle(init.core);
    let out = executor::hooi_loop(
        &mut b,
        t,
        meta,
        tree,
        init_factors,
        input_norm_sq,
        executor::LoopCfg {
            max_sweeps: max_iters,
            tol,
        },
    );
    let error = *out.errors.last().expect("at least one iteration ran");
    let timings = HooiTimings::from_stats(out.per_sweep.last().expect("at least one sweep"));
    (
        HooiOutput {
            decomposition: TuckerDecomposition::new(out.core, out.factors),
            error,
            timings,
        },
        out.errors,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt_tree::optimal_tree;
    use crate::sthosvd::{random_init, sthosvd};
    use crate::tree::{balanced_tree, chain_tree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tucker_linalg::Matrix;
    use tucker_tensor::Shape;

    fn random_tensor(dims: &[usize], seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        DenseTensor::random(Shape::new(dims.to_vec()), &dist, &mut rng)
    }

    /// Smooth, compressible but non-separable synthetic field with a small
    /// deterministic noise floor (keeps errors well above machine epsilon
    /// and Gram eigenvalues simple).
    fn smooth_tensor(dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(Shape::new(dims.to_vec()), |c| {
            let mut s = 0.0;
            let mut h = 0x9E37_79B9_7F4A_7C15u64;
            for (i, &x) in c.iter().enumerate() {
                s += (0.9 + 0.13 * i as f64) * x as f64;
                h = (h ^ (x as u64).wrapping_mul(0xff51_afd7_ed55_8ccd))
                    .rotate_left(31)
                    .wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            }
            let noise = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (0.21 * s).sin() + 0.5 * (0.043 * s * s).cos() + 0.05 * noise
        })
    }

    #[test]
    fn improves_on_random_init() {
        let dims = [8usize, 8, 8];
        let t = random_tensor(&dims, 1);
        let meta = TuckerMeta::new(dims.to_vec(), vec![3, 3, 3]);
        let mut rng = StdRng::seed_from_u64(10);
        let init = random_init(&t, &meta, &mut rng);
        let e0 = init.error_from_core_norm(fro_norm_sq(&t));
        let tree = chain_tree(&meta, &[0, 1, 2]);
        let out = hooi_invocation(&t, &meta, &init, &tree);
        assert!(
            out.error < e0,
            "HOOI must improve a random init: {e0} -> {}",
            out.error
        );
        assert!(out.decomposition.factors_orthonormal(1e-9));
    }

    #[test]
    fn all_trees_produce_identical_factors() {
        // Same (old) factors in, so every valid tree computes the same new
        // decomposition (commutativity + deterministic EVD).
        let dims = [6usize, 7, 5, 4];
        let t = smooth_tensor(&dims);
        let meta = TuckerMeta::new(dims.to_vec(), vec![3, 2, 2, 2]);
        let init = sthosvd(&t, &meta);
        let perm: Vec<usize> = (0..4).collect();
        let trees = [
            chain_tree(&meta, &perm),
            chain_tree(&meta, &[3, 2, 1, 0]),
            balanced_tree(&meta, &perm),
            optimal_tree(&meta).tree,
        ];
        let outs: Vec<HooiOutput> = trees
            .iter()
            .map(|tr| hooi_invocation(&t, &meta, &init, tr))
            .collect();
        for o in &outs[1..] {
            assert!((o.error - outs[0].error).abs() < 1e-10);
            for (f1, f2) in o
                .decomposition
                .factors
                .iter()
                .zip(&outs[0].decomposition.factors)
            {
                assert!(f1.max_abs_diff(f2) < 1e-7, "factor mismatch between trees");
            }
        }
    }

    #[test]
    fn gauss_seidel_error_is_monotone() {
        // The Gauss–Seidel variant carries the classic ALS guarantee.
        let dims = [8usize, 7, 6];
        let t = smooth_tensor(&dims);
        let meta = TuckerMeta::new(dims.to_vec(), vec![3, 3, 2]);
        let mut cur = sthosvd(&t, &meta);
        let mut last = cur.error_from_core_norm(fro_norm_sq(&t));
        for _ in 0..6 {
            let out = hooi_invocation_gauss_seidel(&t, &meta, &cur);
            assert!(
                out.error <= last + 1e-10,
                "Gauss–Seidel error increased: {last} -> {}",
                out.error
            );
            last = out.error;
            cur = out.decomposition;
        }
    }

    #[test]
    fn jacobi_tree_sweep_improves_a_random_init() {
        // Tree-based (Jacobi) HOOI is not guaranteed monotone near a fixed
        // point, but a single sweep from a random subspace must improve by a
        // wide margin.
        let dims = [8usize, 7, 6];
        let t = smooth_tensor(&dims);
        let meta = TuckerMeta::new(dims.to_vec(), vec![3, 3, 2]);
        let mut rng = StdRng::seed_from_u64(99);
        let init = random_init(&t, &meta, &mut rng);
        let e0 = init.error_from_core_norm(fro_norm_sq(&t));
        let tree = chain_tree(&meta, &[0, 1, 2]);
        let out = hooi_invocation(&t, &meta, &init, &tree);
        assert!(
            out.error < e0 * 0.95,
            "one sweep must improve: {e0} -> {}",
            out.error
        );
        // And a Gauss–Seidel sweep from the same init does at least as well
        // as its own theory requires (error <= init error).
        let gs = hooi_invocation_gauss_seidel(&t, &meta, &init);
        assert!(gs.error <= e0 + 1e-10);
    }

    #[test]
    fn exact_low_rank_stays_exact() {
        // If the input is exactly low-rank, STHOSVD already nails it and
        // HOOI must keep error ~0.
        let meta = TuckerMeta::new([8, 6, 7], [2, 2, 3]);
        let mut rng = StdRng::seed_from_u64(20);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        let core = DenseTensor::random(meta.core().clone(), &dist, &mut rng);
        let factors: Vec<Matrix> = (0..3)
            .map(|n| {
                tucker_linalg::orthonormal_columns(&Matrix::random(
                    meta.l(n),
                    meta.k(n),
                    &dist,
                    &mut rng,
                ))
            })
            .collect();
        let t = TuckerDecomposition::new(core, factors).reconstruct();
        let init = sthosvd(&t, &meta);
        let tree = chain_tree(&meta, &[0, 1, 2]);
        let out = hooi_invocation(&t, &meta, &init, &tree);
        assert!(out.error < 1e-8, "error {}", out.error);
    }

    #[test]
    fn iterate_respects_max_iters_and_traces() {
        let dims = [6usize, 6, 6];
        let t = smooth_tensor(&dims);
        let meta = TuckerMeta::new(dims.to_vec(), vec![2, 2, 2]);
        let init = sthosvd(&t, &meta);
        let tree = chain_tree(&meta, &[0, 1, 2]);
        let (out, trace) = hooi_iterate(&t, &meta, init, &tree, 8, 1e-12);
        assert!(!trace.is_empty() && trace.len() <= 8);
        assert_eq!(out.error, *trace.last().unwrap());
        // Every iterate is a valid decomposition.
        assert!(out.decomposition.factors_orthonormal(1e-8));
    }

    #[test]
    fn iterate_stops_early_when_converged() {
        // An exactly low-rank tensor converges immediately: the error is 0
        // after every sweep, so the |Δerror| < tol condition fires at the
        // second iteration.
        let meta = TuckerMeta::new([6, 6, 6], [2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(31);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        let core = DenseTensor::random(meta.core().clone(), &dist, &mut rng);
        let factors: Vec<Matrix> = (0..3)
            .map(|n| {
                tucker_linalg::orthonormal_columns(&Matrix::random(
                    meta.l(n),
                    meta.k(n),
                    &dist,
                    &mut rng,
                ))
            })
            .collect();
        let t = TuckerDecomposition::new(core, factors).reconstruct();
        let init = sthosvd(&t, &meta);
        let tree = chain_tree(&meta, &[0, 1, 2]);
        let (_, trace) = hooi_iterate(&t, &meta, init, &tree, 50, 1e-12);
        assert!(
            trace.len() <= 3,
            "exact tensor should converge instantly: {trace:?}"
        );
    }

    /// Allocation-regression smoke: once the workspace is warm, a
    /// steady-state HOOI invocation — fused Gram leaves, workspace TTMs,
    /// recycled core — performs **zero** tensor-buffer allocations. This is
    /// the grep-proof guard that no hot path clones a tensor or
    /// materializes an unfolding (an unfold would allocate a tensor-sized
    /// matrix copy via a fresh buffer; any `DenseTensor` clone or
    /// constructor bumps the thread-local counter).
    #[test]
    fn steady_state_invocation_is_tensor_alloc_free() {
        if !cfg!(debug_assertions) {
            return; // the counter is compiled out in release builds
        }
        let dims = [8usize, 7, 6];
        let t = smooth_tensor(&dims);
        let meta = TuckerMeta::new(dims.to_vec(), vec![3, 3, 2]);
        // A balanced tree exercises shared intermediates (several children
        // per node), the harder case for buffer recycling.
        let tree = balanced_tree(&meta, &[0, 1, 2]);
        let mut ws = TtmWorkspace::new();
        let mut current = sthosvd(&t, &meta);
        for _ in 0..2 {
            let out = hooi_invocation_ws(&t, &meta, &current, &tree, &mut ws);
            let superseded = std::mem::replace(&mut current, out.decomposition);
            ws.recycle(superseded.core);
        }
        let before = tucker_tensor::tensor_buffer_allocs();
        let pack_before = ws.pack_bytes();
        let out = hooi_invocation_ws(&t, &meta, &current, &tree, &mut ws);
        let allocs = tucker_tensor::tensor_buffer_allocs() - before;
        assert_eq!(
            allocs, 0,
            "steady-state HOOI invocation allocated {allocs} tensor buffers"
        );
        // The pooled kernel pack buffers are part of the same invariant:
        // warm-ups sized them, so a steady-state invocation must not regrow
        // them (growth would also have bumped the alloc counter above).
        assert_eq!(
            ws.pack_bytes(),
            pack_before,
            "steady-state HOOI invocation regrew the workspace pack buffers"
        );
        // The invocation still did real work.
        assert!(out.error.is_finite() && out.decomposition.factors_orthonormal(1e-8));
    }

    #[test]
    fn timings_are_recorded() {
        let dims = [10usize, 10, 10];
        let t = random_tensor(&dims, 3);
        let meta = TuckerMeta::new(dims.to_vec(), vec![4, 4, 4]);
        let init = sthosvd(&t, &meta);
        let tree = chain_tree(&meta, &[0, 1, 2]);
        let out = hooi_invocation(&t, &meta, &init, &tree);
        assert!(out.timings.ttm > Duration::ZERO);
        assert!(out.timings.svd > Duration::ZERO);
    }
}
