//! TTM-trees (paper §3.1) and the prior-work constructions (§3.2).
//!
//! A TTM-tree encodes one way of executing the HOOI TTM component:
//! * the root is the input tensor `T`;
//! * each internal node multiplies its parent's output along one mode;
//! * each of the `N` leaves is one new factor matrix `F̃_n`, and the path
//!   from the root to leaf `F̃_n` must multiply along every mode except `n`.
//!
//! Prior schemes expressed as trees:
//! * [`chain_tree`] — the naive scheme: `N` independent chains of `N − 1`
//!   TTMs each, optionally with the mode orderings of Austin et al.
//!   ([`ModeOrdering`]);
//! * [`balanced_tree`] — the divide-and-conquer scheme of Kaya & Uçar with
//!   roughly `N log N` TTMs.

use crate::meta::TuckerMeta;

/// Label of a TTM-tree node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeLabel {
    /// The input tensor `T`.
    Root,
    /// TTM along the given mode (`Out(u) = In(u) ×_n F_nᵀ`).
    Ttm(usize),
    /// Leaf producing the new factor matrix for the given mode.
    Leaf(usize),
}

/// A node in the arena.
#[derive(Clone, Debug)]
pub struct Node {
    /// What this node does.
    pub label: NodeLabel,
    /// Parent id (`None` for the root).
    pub parent: Option<usize>,
    /// Child ids in insertion order.
    pub children: Vec<usize>,
}

/// A TTM-tree stored as an arena; node 0 is always the root.
#[derive(Clone, Debug)]
pub struct TtmTree {
    nodes: Vec<Node>,
    order: usize,
}

impl TtmTree {
    /// Create an empty tree (just the root) over `order` modes.
    pub fn new(order: usize) -> Self {
        assert!(order >= 1);
        TtmTree {
            nodes: vec![Node {
                label: NodeLabel::Root,
                parent: None,
                children: Vec::new(),
            }],
            order,
        }
    }

    /// Number of modes `N`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The root's node id (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Number of nodes (root + internal + leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Access a node.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Drop every node with id `>= len` (stack-discipline undo for
    /// enumeration code). Surviving nodes' child lists are pruned.
    ///
    /// # Panics
    /// Panics if `len == 0` (the root must survive).
    pub fn truncate_nodes(&mut self, len: usize) {
        assert!(len >= 1, "cannot truncate the root away");
        self.nodes.truncate(len);
        for node in &mut self.nodes {
            node.children.retain(|&c| c < len);
        }
    }

    /// Append a child with the given label under `parent`, returning its id.
    pub fn add_child(&mut self, parent: usize, label: NodeLabel) -> usize {
        assert!(parent < self.nodes.len(), "bad parent id");
        assert!(
            !matches!(label, NodeLabel::Root),
            "only node 0 may be the root"
        );
        let id = self.nodes.len();
        self.nodes.push(Node {
            label,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Ids of all internal (TTM) nodes, in a parent-before-child order.
    pub fn internal_nodes(&self) -> Vec<usize> {
        self.topological_order()
            .into_iter()
            .filter(|&id| matches!(self.nodes[id].label, NodeLabel::Ttm(_)))
            .collect()
    }

    /// Ids of all leaves.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&id| matches!(self.nodes[id].label, NodeLabel::Leaf(_)))
            .collect()
    }

    /// Number of TTM operations the tree performs.
    pub fn num_ttms(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.label, NodeLabel::Ttm(_)))
            .count()
    }

    /// All node ids in DFS pre-order from the root (parents before children).
    pub fn topological_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children reversed so the leftmost child is visited first.
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The set of modes multiplied on the path from the root down to and
    /// including `id`, as a bitmask.
    pub fn premultiplied_mask(&self, id: usize) -> u32 {
        let mut mask = 0u32;
        let mut cur = Some(id);
        while let Some(c) = cur {
            if let NodeLabel::Ttm(n) = self.nodes[c].label {
                mask |= 1 << n;
            }
            cur = self.nodes[c].parent;
        }
        mask
    }

    /// Maximum number of internal nodes on any root-to-leaf path.
    pub fn depth(&self) -> usize {
        self.leaves()
            .into_iter()
            .map(|l| {
                let mut d = 0;
                let mut cur = self.nodes[l].parent;
                while let Some(c) = cur {
                    if matches!(self.nodes[c].label, NodeLabel::Ttm(_)) {
                        d += 1;
                    }
                    cur = self.nodes[c].parent;
                }
                d
            })
            .max()
            .unwrap_or(0)
    }

    /// Check the TTM-tree properties of §3.1; returns a human-readable error
    /// on violation. Property (iv) — each leaf's path multiplies exactly the
    /// `N − 1` other modes — implies the others for well-formed arenas.
    pub fn validate(&self) -> Result<(), String> {
        let leaves = self.leaves();
        if leaves.len() != self.order {
            return Err(format!(
                "expected {} leaves, found {}",
                self.order,
                leaves.len()
            ));
        }
        let mut seen = vec![false; self.order];
        for l in leaves {
            let NodeLabel::Leaf(n) = self.nodes[l].label else {
                unreachable!()
            };
            if seen[n] {
                return Err(format!("duplicate leaf for mode {n}"));
            }
            seen[n] = true;
            if !self.nodes[l].children.is_empty() {
                return Err(format!("leaf for mode {n} has children"));
            }
            // The path must contain every mode except n, each exactly once.
            let mut mask = 0u32;
            let mut count = 0;
            let mut cur = self.nodes[l].parent;
            while let Some(c) = cur {
                if let NodeLabel::Ttm(m) = self.nodes[c].label {
                    if m >= self.order {
                        return Err(format!("mode {m} out of range"));
                    }
                    if mask & (1 << m) != 0 {
                        return Err(format!("mode {m} repeated on path to leaf {n}"));
                    }
                    mask |= 1 << m;
                    count += 1;
                }
                cur = self.nodes[c].parent;
            }
            let expect: u32 = ((1u32 << self.order) - 1) & !(1 << n);
            if mask != expect || count != self.order - 1 {
                return Err(format!(
                    "path to leaf {n} multiplies mask {mask:b}, expected {expect:b}"
                ));
            }
        }
        Ok(())
    }
}

impl TtmTree {
    /// Render the tree in Graphviz DOT format, optionally annotating each
    /// node with the grid a [`crate::dyn_grid::DynGridScheme`]-like
    /// assignment gives it (`grids[id]`, any `Display`able).
    pub fn to_dot<G: std::fmt::Display>(&self, grids: Option<&[G]>) -> String {
        let mut out =
            String::from("digraph ttm_tree {\n  node [shape=box, fontname=\"monospace\"];\n");
        for id in 0..self.len() {
            let base = match self.nodes[id].label {
                NodeLabel::Root => "T".to_string(),
                NodeLabel::Ttm(n) => format!("x{n} F{n}^T"),
                NodeLabel::Leaf(n) => format!("F~{n}"),
            };
            let label = match grids {
                Some(g) => format!("{base}\\n[{}]", g[id]),
                None => base,
            };
            let shape = if matches!(self.nodes[id].label, NodeLabel::Leaf(_)) {
                ", shape=ellipse"
            } else {
                ""
            };
            out.push_str(&format!("  n{id} [label=\"{label}\"{shape}];\n"));
        }
        for id in 0..self.len() {
            for &c in &self.nodes[id].children {
                out.push_str(&format!("  n{id} -> n{c};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Mode orderings for chain trees (Austin et al., §3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModeOrdering {
    /// The input order `0, 1, …, N−1`.
    Natural,
    /// Increasing cost factor `K_n` ("K-ordering"): cheap modes first, so the
    /// large tensors near the top of the tree incur low per-element cost.
    ByCostFactor,
    /// Increasing compression factor `h_n` ("h-ordering"): strongest
    /// compression first, so the tensor shrinks as early as possible.
    ByCompression,
}

impl ModeOrdering {
    /// The permutation of modes this ordering induces for `meta`.
    ///
    /// Ties are broken by mode index, making the permutation deterministic.
    pub fn permutation(self, meta: &TuckerMeta) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..meta.order()).collect();
        match self {
            ModeOrdering::Natural => {}
            ModeOrdering::ByCostFactor => {
                perm.sort_by(|&a, &b| meta.k(a).cmp(&meta.k(b)).then(a.cmp(&b)));
            }
            ModeOrdering::ByCompression => {
                perm.sort_by(|&a, &b| meta.h(a).partial_cmp(&meta.h(b)).unwrap().then(a.cmp(&b)));
            }
        }
        perm
    }
}

/// The naive chain tree (§3.2): `N` independent chains, one per new factor.
/// For leaf `n`, the chain multiplies the other modes in the order they
/// appear in `perm`.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..N`.
pub fn chain_tree(meta: &TuckerMeta, perm: &[usize]) -> TtmTree {
    let n = meta.order();
    assert_eq!(perm.len(), n, "permutation arity mismatch");
    let mut check = vec![false; n];
    for &m in perm {
        assert!(m < n && !check[m], "not a permutation: {perm:?}");
        check[m] = true;
    }

    let mut tree = TtmTree::new(n);
    // Leaves in permutation order too: the first chain computes the factor
    // for the first mode in the ordering, etc.
    for &leaf_mode in perm {
        let mut cur = tree.root();
        for &m in perm {
            if m != leaf_mode {
                cur = tree.add_child(cur, NodeLabel::Ttm(m));
            }
        }
        tree.add_child(cur, NodeLabel::Leaf(leaf_mode));
    }
    debug_assert!(tree.validate().is_ok());
    tree
}

/// The balanced tree of Kaya & Uçar (§3.2): split the modes in two halves
/// `A, B`; under the current attach point, build a chain of all `A`-modes
/// followed by the recursive subtree computing `B`'s factors, and a chain of
/// all `B`-modes followed by the recursive subtree computing `A`'s factors.
/// Roughly `N log N` TTMs.
///
/// `perm` fixes the order in which modes are listed before splitting; the
/// paper observed ordering has little effect on balanced trees and uses the
/// natural order.
pub fn balanced_tree(meta: &TuckerMeta, perm: &[usize]) -> TtmTree {
    let n = meta.order();
    assert_eq!(perm.len(), n, "permutation arity mismatch");
    let mut tree = TtmTree::new(n);
    let root = tree.root();
    build_balanced(&mut tree, root, perm);
    debug_assert!(tree.validate().is_ok());
    tree
}

fn build_balanced(tree: &mut TtmTree, attach: usize, modes: &[usize]) {
    match modes.len() {
        0 => unreachable!("empty mode set"),
        1 => {
            tree.add_child(attach, NodeLabel::Leaf(modes[0]));
        }
        _ => {
            let m = modes.len() / 2;
            let (a, b) = modes.split_at(m);
            // Chain of A-modes, then compute B's factors beneath it.
            let mut cur = attach;
            for &x in a {
                cur = tree.add_child(cur, NodeLabel::Ttm(x));
            }
            build_balanced(tree, cur, b);
            // Chain of B-modes, then compute A's factors beneath it.
            let mut cur = attach;
            for &x in b {
                cur = tree.add_child(cur, NodeLabel::Ttm(x));
            }
            build_balanced(tree, cur, a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta4() -> TuckerMeta {
        TuckerMeta::new([40, 30, 20, 10], [4, 3, 2, 5])
    }

    #[test]
    fn chain_tree_shape() {
        let meta = meta4();
        let t = chain_tree(&meta, &[0, 1, 2, 3]);
        assert!(t.validate().is_ok());
        // N chains of N-1 TTMs each.
        assert_eq!(t.num_ttms(), 4 * 3);
        assert_eq!(t.leaves().len(), 4);
        assert_eq!(t.depth(), 3);
        // Root has N children (one chain head each).
        assert_eq!(t.node(t.root()).children.len(), 4);
    }

    #[test]
    fn chain_tree_respects_ordering() {
        let meta = meta4();
        let t = chain_tree(&meta, &[3, 1, 0, 2]);
        assert!(t.validate().is_ok());
        // First chain computes F̃_3 and starts multiplying mode 1.
        let first_chain_head = t.node(t.root()).children[0];
        assert_eq!(t.node(first_chain_head).label, NodeLabel::Ttm(1));
    }

    #[test]
    fn balanced_tree_shape_n4() {
        let meta = meta4();
        let t = balanced_tree(&meta, &[0, 1, 2, 3]);
        assert!(t.validate().is_ok());
        // Figure 3(c): 8 TTM nodes for N = 4.
        assert_eq!(t.num_ttms(), 8);
        assert_eq!(t.leaves().len(), 4);
    }

    #[test]
    fn balanced_tree_fewer_ttms_than_chain() {
        for n in 3..=8 {
            let meta = TuckerMeta::new(vec![10; n], vec![2; n]);
            let perm: Vec<usize> = (0..n).collect();
            let chain = chain_tree(&meta, &perm);
            let bal = balanced_tree(&meta, &perm);
            assert!(
                bal.num_ttms() < chain.num_ttms(),
                "N={n}: balanced {} !< chain {}",
                bal.num_ttms(),
                chain.num_ttms()
            );
            assert!(bal.validate().is_ok());
        }
    }

    #[test]
    fn orderings() {
        // K = [4,3,2,5], h = [0.1, 0.1, 0.1, 0.5]
        let meta = meta4();
        assert_eq!(ModeOrdering::Natural.permutation(&meta), vec![0, 1, 2, 3]);
        assert_eq!(
            ModeOrdering::ByCostFactor.permutation(&meta),
            vec![2, 1, 0, 3]
        );
        // h: 4/40=0.1, 3/30=0.1, 2/20=0.1, 5/10=0.5 -> ties by index.
        assert_eq!(
            ModeOrdering::ByCompression.permutation(&meta),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn premultiplied_mask_accumulates() {
        let meta = meta4();
        let t = chain_tree(&meta, &[0, 1, 2, 3]);
        // Walk the first chain: masks grow 1 -> 11 -> 111 (modes 1,2,3 for leaf 0).
        let c1 = t.node(t.root()).children[0];
        let c2 = t.node(c1).children[0];
        assert_eq!(t.premultiplied_mask(c1), 0b0010);
        assert_eq!(t.premultiplied_mask(c2), 0b0110);
    }

    #[test]
    fn validate_rejects_missing_leaf() {
        let mut t = TtmTree::new(2);
        let a = t.add_child(t.root(), NodeLabel::Ttm(1));
        t.add_child(a, NodeLabel::Leaf(0));
        // Missing leaf for mode 1.
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_path() {
        let mut t = TtmTree::new(2);
        // Leaf 0's path must multiply mode 1, not mode 0.
        let a = t.add_child(t.root(), NodeLabel::Ttm(0));
        t.add_child(a, NodeLabel::Leaf(0));
        let b = t.add_child(t.root(), NodeLabel::Ttm(0));
        t.add_child(b, NodeLabel::Leaf(1));
        assert!(t.validate().is_err());
    }

    #[test]
    fn topological_order_is_parent_first() {
        let meta = meta4();
        let t = balanced_tree(&meta, &[0, 1, 2, 3]);
        let topo = t.topological_order();
        let pos: std::collections::HashMap<usize, usize> =
            topo.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in 0..t.len() {
            if let Some(p) = t.node(id).parent {
                assert!(pos[&p] < pos[&id]);
            }
        }
    }

    #[test]
    fn two_mode_trees() {
        let meta = TuckerMeta::new([8, 6], [2, 3]);
        let c = chain_tree(&meta, &[0, 1]);
        assert_eq!(c.num_ttms(), 2);
        let b = balanced_tree(&meta, &[0, 1]);
        assert_eq!(b.num_ttms(), 2);
        assert!(b.validate().is_ok());
    }
}
