//! Re-export shim — TTM-trees and the prior-work constructions live in
//! [`crate::plan::tree`], mode orderings in [`crate::plan::order`] (the
//! planning layer, DESIGN.md §6). Import from there in new code.

pub use crate::plan::order::ModeOrdering;
pub use crate::plan::tree::{
    balanced_tree, chain_tree, greedy_reuse_tree, Node, NodeLabel, TtmTree,
};
