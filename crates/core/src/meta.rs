//! Problem metadata.
//!
//! Everything the paper's planner needs is the *metadata* of a HOOI input —
//! the dimension lengths of the input tensor and of the core (§5, §6.1):
//! computational load and communication volume depend only on these, never
//! on element values.

use tucker_tensor::Shape;

/// Metadata of a Tucker decomposition problem: input shape
/// `L₁ × … × L_N` and core shape `K₁ × … × K_N`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TuckerMeta {
    input: Shape,
    core: Shape,
}

impl TuckerMeta {
    /// Create metadata.
    ///
    /// # Panics
    /// Panics unless both shapes have the same order and `K_n ≤ L_n` for
    /// every mode.
    pub fn new(input: impl Into<Shape>, core: impl Into<Shape>) -> Self {
        let input = input.into();
        let core = core.into();
        assert_eq!(input.order(), core.order(), "input/core order mismatch");
        for n in 0..input.order() {
            assert!(
                core.dim(n) <= input.dim(n),
                "core length K_{n} = {} exceeds input length L_{n} = {}",
                core.dim(n),
                input.dim(n)
            );
        }
        TuckerMeta { input, core }
    }

    /// Number of modes `N`.
    #[inline]
    pub fn order(&self) -> usize {
        self.input.order()
    }

    /// Input tensor shape.
    #[inline]
    pub fn input(&self) -> &Shape {
        &self.input
    }

    /// Core tensor shape.
    #[inline]
    pub fn core(&self) -> &Shape {
        &self.core
    }

    /// Input length `L_n`.
    #[inline]
    pub fn l(&self, n: usize) -> usize {
        self.input.dim(n)
    }

    /// Cost factor `K_n` (paper §3.1): multiplying along mode `n` costs
    /// `K_n` FLOPs per input element.
    #[inline]
    pub fn k(&self, n: usize) -> usize {
        self.core.dim(n)
    }

    /// Compression factor `h_n = K_n / L_n` (paper §3.1): multiplying along
    /// mode `n` shrinks the tensor by this factor.
    #[inline]
    pub fn h(&self, n: usize) -> f64 {
        self.core.dim(n) as f64 / self.input.dim(n) as f64
    }

    /// Input cardinality `|T|` as `f64` (paper-scale metadata can overflow
    /// `usize` arithmetic downstream).
    pub fn input_cardinality(&self) -> f64 {
        self.input.cardinality_f64()
    }

    /// Core cardinality `|G|`.
    pub fn core_cardinality(&self) -> f64 {
        self.core.cardinality_f64()
    }

    /// Overall compression ratio `|T| / |G|`.
    pub fn compression_ratio(&self) -> f64 {
        self.input_cardinality() / self.core_cardinality()
    }

    /// Cardinality of the intermediate tensor after multiplying along the
    /// modes in `premultiplied` (a bitmask over modes): `|T[P]|` in the
    /// paper's notation — `|T| · ∏_{n∈P} h_n`.
    pub fn premultiplied_cardinality(&self, premultiplied: u32) -> f64 {
        let mut card = self.input_cardinality();
        for n in 0..self.order() {
            if premultiplied & (1 << n) != 0 {
                card *= self.h(n);
            }
        }
        card
    }

    /// Uniformly scale the metadata down by `factor` along every mode
    /// (lengths are divided and clamped to at least 1, preserving
    /// `K_n ≤ L_n`). Used to shrink paper-scale tensors to measurable size
    /// while keeping the mode proportions that drive planning decisions.
    pub fn scaled_down(&self, factor: usize) -> TuckerMeta {
        assert!(factor >= 1);
        let l: Vec<usize> = self
            .input
            .dims()
            .iter()
            .map(|&d| (d / factor).max(1))
            .collect();
        let k: Vec<usize> = self
            .core
            .dims()
            .iter()
            .zip(&l)
            .map(|(&d, &lmax)| (d / factor).clamp(1, lmax))
            .collect();
        TuckerMeta::new(l, k)
    }
}

impl std::fmt::Display for TuckerMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.input, self.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors() {
        let m = TuckerMeta::new([100, 50], [10, 25]);
        assert_eq!(m.order(), 2);
        assert_eq!(m.k(0), 10);
        assert_eq!(m.l(1), 50);
        assert!((m.h(0) - 0.1).abs() < 1e-15);
        assert!((m.h(1) - 0.5).abs() < 1e-15);
        assert_eq!(m.compression_ratio(), 20.0);
    }

    #[test]
    fn premultiplied_cardinality_shrinks() {
        let m = TuckerMeta::new([10, 10, 10], [5, 2, 10]);
        assert_eq!(m.premultiplied_cardinality(0), 1000.0);
        assert_eq!(m.premultiplied_cardinality(0b001), 500.0);
        assert_eq!(m.premultiplied_cardinality(0b011), 100.0);
        assert_eq!(m.premultiplied_cardinality(0b111), 100.0);
    }

    #[test]
    fn scaled_down_preserves_validity() {
        let m = TuckerMeta::new([672, 672, 627, 16], [279, 279, 153, 14]);
        let s = m.scaled_down(8);
        assert_eq!(s.input().dims(), &[84, 84, 78, 2]);
        for n in 0..4 {
            assert!(s.k(n) <= s.l(n));
            assert!(s.k(n) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds input length")]
    fn oversized_core_rejected() {
        let _ = TuckerMeta::new([4, 4], [5, 2]);
    }
}
