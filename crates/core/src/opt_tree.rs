//! Re-export shim — the §3.3 optimal-tree DP lives in [`crate::plan::tree`]
//! (the planning layer, DESIGN.md §6). Import from there in new code.

pub use crate::plan::tree::{optimal_flops, optimal_tree, OptimalTree};
