//! Optimal TTM-tree construction (paper §3.3).
//!
//! The dynamic program works over triples `(P, Q, R)`: `P` = modes already
//! multiplied on the path from the root, `Q` = modes whose new factors must
//! be produced inside the subtree, `R` = the remaining, *reusable* modes.
//! Since the triple partitions `[0, N)`, `R` is determined by `(P, Q)` and
//! states are indexed in base 3 (`3^N` of them). Two moves exist:
//!
//! * **reuse** a mode `n ∈ R`: pay `K_n · |T[P]|` for one shared TTM and
//!   recurse on `(P ∪ {n}, Q, R ∖ {n})` — a single child;
//! * **split** `Q = Q₁ ⊎ Q₂`: recurse on `(P, Q₁)` and `(P, Q₂)` — two
//!   children (optimal trees are binary, Lemma 3.1).
//!
//! Base case: `|Q| = 1` and `R = ∅` — the leaf. Enumerating submasks of `Q`
//! over all states gives the paper's `O(4^N)` bound; the table is memoized
//! so each configuration is looked up once.

use crate::meta::TuckerMeta;
use crate::tree::{NodeLabel, TtmTree};

/// Result of the optimal-tree construction.
#[derive(Clone, Debug)]
pub struct OptimalTree {
    /// The optimal TTM-tree.
    pub tree: TtmTree,
    /// Its FLOP cost (matches `cost::tree_flops(&tree, meta)`).
    pub flops: f64,
}

/// How a state's optimum is achieved (for tree reconstruction).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Choice {
    /// Unsolved sentinel.
    Unset,
    /// Base case: single leaf remains.
    Leaf,
    /// Reuse the given mode.
    Reuse(usize),
    /// Split `Q`; payload is the `Q₁` submask.
    Split(u32),
}

struct Dp<'a> {
    meta: &'a TuckerMeta,
    n: usize,
    full: u32,
    pow3: Vec<usize>,
    cost: Vec<f64>,
    choice: Vec<Choice>,
}

impl<'a> Dp<'a> {
    fn new(meta: &'a TuckerMeta) -> Self {
        let n = meta.order();
        assert!(n <= 20, "mode count {n} too large for the bitmask DP");
        let mut pow3 = vec![1usize; n + 1];
        for i in 1..=n {
            pow3[i] = pow3[i - 1] * 3;
        }
        let size = pow3[n];
        Dp {
            meta,
            n,
            full: (1u32 << n) - 1,
            pow3,
            cost: vec![f64::NAN; size],
            choice: vec![Choice::Unset; size],
        }
    }

    /// Base-3 state index: digit 0 if the mode is in `R`, 1 if in `Q`, 2 if
    /// in `P`.
    fn index(&self, p: u32, q: u32) -> usize {
        let mut idx = 0;
        for m in 0..self.n {
            let digit = if p & (1 << m) != 0 {
                2
            } else if q & (1 << m) != 0 {
                1
            } else {
                0
            };
            idx += digit * self.pow3[m];
        }
        idx
    }

    fn solve(&mut self, p: u32, q: u32) -> f64 {
        debug_assert_eq!(p & q, 0, "P and Q must be disjoint");
        debug_assert!(q != 0, "Q must be non-empty");
        let idx = self.index(p, q);
        if !self.cost[idx].is_nan() {
            return self.cost[idx];
        }

        let r = self.full & !(p | q);
        if q.count_ones() == 1 && r == 0 {
            self.cost[idx] = 0.0;
            self.choice[idx] = Choice::Leaf;
            return 0.0;
        }

        let mut best = f64::INFINITY;
        let mut best_choice = Choice::Unset;

        // Reuse: one shared TTM along some mode of R.
        if r != 0 {
            let card = self.meta.premultiplied_cardinality(p);
            let mut rm = r;
            while rm != 0 {
                let m = rm.trailing_zeros() as usize;
                rm &= rm - 1;
                let c = self.meta.k(m) as f64 * card + self.solve(p | (1 << m), q);
                if c < best {
                    best = c;
                    best_choice = Choice::Reuse(m);
                }
            }
        }

        // Split: partition Q into two non-empty halves. Fixing the lowest
        // set bit of Q inside Q₁ enumerates each unordered partition once.
        if q.count_ones() >= 2 {
            let low = q & q.wrapping_neg();
            let rest = q & !low;
            // Iterate over all submasks s of `rest`; Q₁ = low | s.
            let mut s = rest;
            loop {
                let q1 = low | s;
                if q1 != q {
                    let q2 = q & !q1;
                    let c = self.solve(p, q1) + self.solve(p, q2);
                    if c < best {
                        best = c;
                        best_choice = Choice::Split(q1);
                    }
                }
                if s == 0 {
                    break;
                }
                s = (s - 1) & rest;
            }
        }

        assert!(
            best.is_finite(),
            "state (P={p:b}, Q={q:b}) has no feasible move"
        );
        self.cost[idx] = best;
        self.choice[idx] = best_choice;
        best
    }

    fn build(&self, tree: &mut TtmTree, attach: usize, p: u32, q: u32) {
        let idx = self.index(p, q);
        match self.choice[idx] {
            Choice::Unset => unreachable!("state not solved"),
            Choice::Leaf => {
                let m = q.trailing_zeros() as usize;
                tree.add_child(attach, NodeLabel::Leaf(m));
            }
            Choice::Reuse(m) => {
                let u = tree.add_child(attach, NodeLabel::Ttm(m));
                self.build(tree, u, p | (1 << m), q);
            }
            Choice::Split(q1) => {
                self.build(tree, attach, p, q1);
                self.build(tree, attach, p, q & !q1);
            }
        }
    }
}

/// Compute the optimal TTM-tree for `meta`.
pub fn optimal_tree(meta: &TuckerMeta) -> OptimalTree {
    let mut dp = Dp::new(meta);
    let full = dp.full;
    let flops = dp.solve(0, full);
    let mut tree = TtmTree::new(meta.order());
    let root = tree.root();
    dp.build(&mut tree, root, 0, full);
    debug_assert!(tree.validate().is_ok(), "DP produced an invalid tree");
    OptimalTree { tree, flops }
}

/// Optimal cost only (skips tree reconstruction).
pub fn optimal_flops(meta: &TuckerMeta) -> f64 {
    let mut dp = Dp::new(meta);
    let full = dp.full;
    dp.solve(0, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::tree_flops;
    use crate::tree::{balanced_tree, chain_tree, ModeOrdering};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn reconstructed_tree_cost_matches_dp_value() {
        let metas = [
            TuckerMeta::new([20, 50, 100], [4, 25, 10]),
            TuckerMeta::new([40, 40, 40, 40], [4, 8, 16, 2]),
            TuckerMeta::new([20, 50, 100, 400, 20], [16, 10, 20, 40, 2]),
        ];
        for meta in metas {
            let opt = optimal_tree(&meta);
            assert!(opt.tree.validate().is_ok());
            let recomputed = tree_flops(&opt.tree, &meta);
            assert!(
                (opt.flops - recomputed).abs() < opt.flops * 1e-12,
                "{meta}: DP {} vs tree {recomputed}",
                opt.flops
            );
        }
    }

    #[test]
    fn never_worse_than_heuristics_random_meta() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..60 {
            let n = rng.gen_range(2..=6);
            let ls: Vec<usize> = (0..n)
                .map(|_| [20, 50, 100, 400][rng.gen_range(0..4)])
                .collect();
            let ks: Vec<usize> = ls
                .iter()
                .map(|&l| {
                    let h = [1.25, 2.0, 5.0, 10.0][rng.gen_range(0..4)];
                    ((l as f64 / h) as usize).max(1)
                })
                .collect();
            let meta = TuckerMeta::new(ls, ks);
            let opt = optimal_flops(&meta);
            for ordering in [
                ModeOrdering::Natural,
                ModeOrdering::ByCostFactor,
                ModeOrdering::ByCompression,
            ] {
                let perm = ordering.permutation(&meta);
                let chain = tree_flops(&chain_tree(&meta, &perm), &meta);
                let bal = tree_flops(&balanced_tree(&meta, &perm), &meta);
                assert!(
                    opt <= chain * (1.0 + 1e-12),
                    "{meta}: opt {opt} > chain {chain}"
                );
                assert!(
                    opt <= bal * (1.0 + 1e-12),
                    "{meta}: opt {opt} > balanced {bal}"
                );
            }
        }
    }

    #[test]
    fn two_modes_exact() {
        // N=2: the only trees are the two chains; each chain tree does both
        // leaves. Cost of tree with independent chains: K1|T| (for leaf 0's
        // chain multiplying mode 1) + K0|T| (for leaf 1's chain). No reuse
        // possible (R empty at root after split). The DP must return
        // (K0 + K1)|T|.
        let meta = TuckerMeta::new([10, 20], [3, 7]);
        let opt = optimal_flops(&meta);
        let expect = (3.0 + 7.0) * 200.0;
        assert!((opt - expect).abs() < 1e-9, "got {opt}, want {expect}");
    }

    #[test]
    fn uniform_modes_prefer_reuse() {
        // With many uniform strongly-compressing modes the optimal tree must
        // use many fewer TTMs than the naive chain scheme.
        let meta = TuckerMeta::new(vec![100; 6], vec![5; 6]);
        let opt = optimal_tree(&meta);
        let chain = chain_tree(&meta, &(0..6).collect::<Vec<_>>());
        assert!(opt.tree.num_ttms() < chain.num_ttms());
        assert!(opt.flops < tree_flops(&chain, &meta));
    }

    #[test]
    fn paper_remark_sometimes_skips_reuse() {
        // §3.3 Remarks: the optimal tree may *not* reuse an available mode,
        // postponing an expensive mode until the tensor has shrunk. Verify
        // the DP is not a greedy always-reuse strategy: build metadata with
        // one very expensive, barely-compressing mode and check that some
        // state on the optimal tree splits while reuse was available.
        let meta = TuckerMeta::new([400, 20, 20, 400], [399, 2, 2, 40]);
        let opt = optimal_tree(&meta);
        // Greedy always-reuse from the root would multiply some mode at the
        // root level once; compare against a manually built "reuse mode 0
        // first" tree: cost must be no better than the DP's.
        let mut greedy = TtmTree::new(4);
        let root = greedy.root();
        // Reuse mode 0 at the top (shared by leaves 1,2,3), then chains.
        let top = greedy.add_child(root, NodeLabel::Ttm(0));
        for leaf in 1..4 {
            let mut cur = top;
            for m in 1..4 {
                if m != leaf {
                    cur = greedy.add_child(cur, NodeLabel::Ttm(m));
                }
            }
            greedy.add_child(cur, NodeLabel::Leaf(leaf));
        }
        {
            let mut cur = root;
            for m in 1..4 {
                cur = greedy.add_child(cur, NodeLabel::Ttm(m));
            }
            greedy.add_child(cur, NodeLabel::Leaf(0));
        }
        assert!(greedy.validate().is_ok());
        assert!(opt.flops <= tree_flops(&greedy, &meta));
        // And the optimal must strictly beat it here: premultiplying the
        // K=399 mode at full size is a blunder.
        assert!(
            opt.flops < tree_flops(&greedy, &meta) * 0.9,
            "optimal {} vs greedy-reuse {}",
            opt.flops,
            tree_flops(&greedy, &meta)
        );
    }

    #[test]
    fn single_mode_plus_one() {
        // N=1 is degenerate (leaf with empty chain).
        let meta = TuckerMeta::new([10], [2]);
        let opt = optimal_tree(&meta);
        assert_eq!(opt.flops, 0.0);
        assert_eq!(opt.tree.num_ttms(), 0);
        assert!(opt.tree.validate().is_ok());
    }

    #[test]
    fn optimal_is_binary() {
        // Lemma 3.1: there is an optimal binary tree; our construction only
        // emits nodes with <= 2 children.
        let meta = TuckerMeta::new([50, 100, 20, 400, 50, 20], [10, 20, 4, 40, 25, 2]);
        let opt = optimal_tree(&meta);
        for id in 0..opt.tree.len() {
            assert!(
                opt.tree.node(id).children.len() <= 2,
                "node {id} has >2 children"
            );
        }
    }
}
