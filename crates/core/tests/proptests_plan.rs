//! Property-based certification of the joint grid × tree × order DP
//! (`plan::search::optimize`) against the independent brute-force oracle,
//! under **both** cost models, across randomized 4-D/5-D/6-D metadata and
//! P ∈ {16, 64, 256}.
//!
//! The invariant: the DP winner's [`sweep_cost`] is ≤ the cost of every
//! enumerated candidate — TTM-trees from the full enumeration for N = 4
//! (strided down to a few hundred: the complete set has ~27k members),
//! random trees plus the heuristic lineup for N ∈ {5, 6} (full enumeration
//! is infeasible there) — × grid assignments (exhaustive when the space is
//! small, deterministic sampling plus all static schemes otherwise). The
//! small-N *fully* exhaustive certification (every tree × every
//! assignment) lives in `suite::driver::dp_certification`, run by
//! `experiments -- planner` and CI.
//!
//! Cases are generated deterministically from a fixed per-test seed (see
//! `vendor/proptest`): CI runs are reproducible, and `PROPTEST_SEED` /
//! `PROPTEST_CASES` explore other streams or bound the case count.

use proptest::prelude::*;
use tucker_core::plan::brute_force::{enumerate_all_trees, random_tree, sampled_sweep_costs};
use tucker_core::plan::cost::{sweep_cost, CostModel, FlopVolumeModel, NetCostModel};
use tucker_core::plan::grid::{candidate_grids, scheme_volume};
use tucker_core::plan::search::{optimize, SearchBudget};
use tucker_core::plan::tree::TtmTree;
use tucker_core::plan::Planner;
use tucker_core::TuckerMeta;
use tucker_distsim::NetModel;

/// Paper-flavoured metadata with `order` modes and a core big enough for
/// the tested rank counts (K ∈ {4, 8, 16} keeps the valid-grid sets small
/// enough for the oracle).
fn meta_strategy(order: usize) -> impl Strategy<Value = TuckerMeta> {
    let lengths = prop::collection::vec(prop::sample::select(vec![16usize, 24, 40, 64]), order);
    let ks = prop::collection::vec(prop::sample::select(vec![4usize, 8, 16]), order);
    (lengths, ks).prop_map(|(ls, ks)| {
        let ks: Vec<usize> = ks.iter().zip(&ls).map(|(&k, &l)| k.min(l)).collect();
        TuckerMeta::new(ls, ks)
    })
}

/// The candidate trees the oracle scores: a strided subsample of the full
/// enumeration for N ≤ 4 (seeded offset, ≤ ~200 trees per case); the
/// heuristic lineup plus deterministic random trees for larger orders.
fn oracle_trees(meta: &TuckerMeta, seed: u64) -> Vec<TtmTree> {
    let planner = Planner::new(meta.clone(), 1);
    let mut trees: Vec<TtmTree> = [
        tucker_core::plan::TreeStrategy::chain_k(),
        tucker_core::plan::TreeStrategy::chain_h(),
        tucker_core::plan::TreeStrategy::Balanced,
        tucker_core::plan::TreeStrategy::GreedyReuse,
        tucker_core::plan::TreeStrategy::Optimal,
    ]
    .into_iter()
    .map(|ts| planner.build_tree(ts))
    .collect();
    if meta.order() <= 4 {
        let all = enumerate_all_trees(meta);
        let stride = (all.len() / 200).max(1);
        let offset = (seed as usize) % stride;
        trees.extend(all.into_iter().skip(offset).step_by(stride));
    } else {
        for i in 0..24 {
            trees.push(random_tree(meta, seed.wrapping_add(i)));
        }
    }
    trees
}

/// Certify `optimize`'s winner against the oracle candidates for one
/// (meta, P, model) triple. Returns the number of candidates scored.
fn certify(meta: &TuckerMeta, nranks: usize, model: &dyn CostModel, seed: u64) -> usize {
    let ranked = optimize(meta, nranks, model, &SearchBudget::default());
    let dp_cost = ranked.best().cost;
    let grids = candidate_grids(meta, nranks);
    let mut candidates = 0usize;
    for (ti, tree) in oracle_trees(meta, seed).into_iter().enumerate() {
        // Exhaustive when tiny, sampled (plus every static scheme)
        // otherwise. The tree set itself can be large; cap per-tree work.
        let internal = tree.internal_nodes().len();
        let space = (grids.len() as f64).powi(internal as i32 + 1);
        let costs = if space <= 5_000.0 {
            // Exhaustive via the sampling helper's static pass plus a full
            // odometer: cheaper to reuse min_sweep_cost for the minimum.
            vec![tucker_core::plan::brute_force::min_sweep_cost(
                &tree, meta, &grids, model,
            )]
        } else {
            sampled_sweep_costs(&tree, meta, &grids, model, 24, seed ^ (ti as u64) << 17)
        };
        for c in &costs {
            assert!(
                dp_cost <= c * (1.0 + 1e-9) + 1e-9,
                "{meta} P={nranks} under {}: DP {dp_cost} beaten by a candidate at {c} \
                 (tree {ti}, {internal} internal nodes)",
                model.name()
            );
        }
        candidates += costs.len();
    }
    candidates
}

/// Skip pathologically heavy cases (huge grid sets blow up both the DP's
/// G² regrid scan and the oracle): the property stream still covers every
/// (order, P) combination through the lighter draws.
fn tractable(meta: &TuckerMeta, nranks: usize) -> bool {
    if (nranks as f64) > meta.core_cardinality() {
        return false;
    }
    let g = candidate_grids(meta, nranks).len();
    let states = 3usize.pow(meta.order() as u32);
    states * g * g * meta.order() <= 30_000_000 && g <= 220
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 4-D: the DP winner is never beaten by any enumerated tree × sampled
    /// grid assignment, under both models.
    #[test]
    fn joint_dp_certified_4d(meta in meta_strategy(4), p in prop::sample::select(vec![16usize, 64, 256]), seed in 0u64..1_000_000) {
        prop_assume!(tractable(&meta, p));
        certify(&meta, p, &FlopVolumeModel, seed);
        certify(&meta, p, &NetCostModel::new(NetModel::bgq(), p), seed);
    }

    /// 5-D: heuristic lineup + random trees as oracle fodder.
    #[test]
    fn joint_dp_certified_5d(meta in meta_strategy(5), p in prop::sample::select(vec![16usize, 64, 256]), seed in 0u64..1_000_000) {
        prop_assume!(tractable(&meta, p));
        certify(&meta, p, &FlopVolumeModel, seed);
        certify(&meta, p, &NetCostModel::new(NetModel::bgq(), p), seed);
    }

    /// 6-D: heuristic lineup + random trees as oracle fodder.
    #[test]
    fn joint_dp_certified_6d(meta in meta_strategy(6), p in prop::sample::select(vec![16usize, 64, 256]), seed in 0u64..1_000_000) {
        prop_assume!(tractable(&meta, p));
        certify(&meta, p, &FlopVolumeModel, seed);
        certify(&meta, p, &NetCostModel::new(NetModel::bgq(), p), seed);
    }

    /// The reconstructed winner is internally consistent: valid tree,
    /// scheme volume matching the evaluator, reported cost matching a
    /// recomputation, and never worse than the paper lineup.
    #[test]
    fn dp_winner_is_consistent(meta in meta_strategy(5), p in prop::sample::select(vec![16usize, 64]), ) {
        prop_assume!(tractable(&meta, p));
        let net = NetCostModel::new(NetModel::bgq(), p);
        let models: [&dyn CostModel; 2] = [&FlopVolumeModel, &net];
        for model in models {
            let ranked = optimize(&meta, p, model, &SearchBudget::default());
            for w in ranked.plans.windows(2) {
                prop_assert!(w[0].cost <= w[1].cost + 1e-9);
            }
            let best = ranked.best();
            prop_assert!(best.plan.tree.validate().is_ok());
            let recomputed = sweep_cost(model, &meta, &best.plan.tree, &best.plan.grids);
            prop_assert!((recomputed - best.cost).abs() <= best.cost.abs().max(1.0) * 1e-9);
            let vol = scheme_volume(&best.plan.tree, &meta, &best.plan.grids);
            prop_assert!((vol - best.plan.volume).abs() <= vol.max(1.0) * 1e-9);
            let planner = Planner::new(meta.clone(), p);
            for other in planner.paper_lineup() {
                let c = sweep_cost(model, &meta, &other.tree, &other.grids);
                prop_assert!(best.cost <= c * (1.0 + 1e-9));
            }
        }
    }
}
