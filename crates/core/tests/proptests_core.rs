//! Property-based tests for the planner algorithms (core crate).
//!
//! Cases are generated deterministically from a fixed per-test seed (see
//! `vendor/proptest`): CI runs are reproducible, and `PROPTEST_SEED` /
//! `PROPTEST_CASES` explore other streams or bound the case count.

use proptest::prelude::*;
use tucker_core::brute_force::{exhaustive_optimal_flops, greedy_reuse_tree};
use tucker_core::cost::tree_flops;
use tucker_core::dist_sthosvd::{optimal_sthosvd_order, sthosvd_chain_flops};
use tucker_core::dyn_grid::{optimal_dynamic_grids, scheme_volume, DynGridObjective};
use tucker_core::opt_tree::{optimal_flops, optimal_tree};
use tucker_core::tree::{balanced_tree, chain_tree, ModeOrdering};
use tucker_core::volume::{optimal_static_grid, static_volume};
use tucker_core::TuckerMeta;

/// Strategy: paper-flavoured metadata with the given number of modes.
fn meta_strategy(order: usize) -> impl Strategy<Value = TuckerMeta> {
    let lengths = prop::collection::vec(prop::sample::select(vec![20usize, 50, 100, 400]), order);
    let ratios = prop::collection::vec(prop::sample::select(vec![1.25f64, 2.0, 5.0, 10.0]), order);
    (lengths, ratios).prop_map(|(ls, rs)| {
        let ks: Vec<usize> = ls
            .iter()
            .zip(&rs)
            .map(|(&l, &r)| (l as f64 / r) as usize)
            .collect();
        TuckerMeta::new(ls, ks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DP value always equals the cost of the tree it reconstructs.
    #[test]
    fn dp_value_matches_reconstruction(meta in meta_strategy(5)) {
        let opt = optimal_tree(&meta);
        let recomputed = tree_flops(&opt.tree, &meta);
        prop_assert!((opt.flops - recomputed).abs() <= opt.flops * 1e-12);
        prop_assert!(opt.tree.validate().is_ok());
    }

    /// The optimal tree never loses to any prior scheme.
    #[test]
    fn dp_dominates_heuristics(meta in meta_strategy(4)) {
        let opt = optimal_flops(&meta);
        for ordering in [ModeOrdering::Natural, ModeOrdering::ByCostFactor, ModeOrdering::ByCompression] {
            let perm = ordering.permutation(&meta);
            prop_assert!(opt <= tree_flops(&chain_tree(&meta, &perm), &meta) * (1.0 + 1e-12));
            prop_assert!(opt <= tree_flops(&balanced_tree(&meta, &perm), &meta) * (1.0 + 1e-12));
        }
        prop_assert!(opt <= tree_flops(&greedy_reuse_tree(&meta), &meta) * (1.0 + 1e-12));
    }

    /// The DP equals full exhaustive enumeration (including non-binary
    /// trees) for N = 3 — empirical Lemma 3.1.
    #[test]
    fn dp_matches_exhaustive_n3(meta in meta_strategy(3)) {
        let dp = optimal_flops(&meta);
        let brute = exhaustive_optimal_flops(&meta);
        prop_assert!((dp - brute).abs() <= brute * 1e-12, "dp {dp} brute {brute}");
    }

    /// Dynamic gridding never loses to the optimal static grid on the same
    /// tree, and its DP value matches the evaluator on its own scheme.
    #[test]
    fn dynamic_dominates_static(meta in meta_strategy(4)) {
        let tree = optimal_tree(&meta).tree;
        let p = 16usize;
        prop_assume!(meta.core_cardinality() >= p as f64);
        let stat = optimal_static_grid(&tree, &meta, p);
        let dynamic = optimal_dynamic_grids(&tree, &meta, p, DynGridObjective::Exact);
        prop_assert!(dynamic.volume <= stat.volume + 1e-6);
        let v = scheme_volume(&tree, &meta, &dynamic);
        prop_assert!((v - dynamic.volume).abs() <= dynamic.volume.max(1.0) * 1e-9);
        // And the exact objective never loses to the paper-literal one.
        let lit = optimal_dynamic_grids(&tree, &meta, p, DynGridObjective::ChildrenOnly);
        prop_assert!(dynamic.volume <= lit.volume + 1e-6);
    }

    /// The static-grid search result is indeed minimal over every valid grid.
    #[test]
    fn static_search_is_minimal(meta in meta_strategy(3)) {
        let tree = balanced_tree(&meta, &[0, 1, 2]);
        let p = 8usize;
        prop_assume!(meta.core_cardinality() >= p as f64);
        let best = optimal_static_grid(&tree, &meta, p);
        for g in tucker_distsim::enumerate_valid_grids(p, meta.core().dims()) {
            prop_assert!(best.volume <= static_volume(&tree, &meta, &g) + 1e-9);
        }
    }

    /// The closed-form STHOSVD ordering beats random permutations.
    #[test]
    fn sthosvd_order_optimal(meta in meta_strategy(5), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let best = sthosvd_chain_flops(&meta, &optimal_sthosvd_order(&meta));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..meta.order()).collect();
        for _ in 0..5 {
            perm.shuffle(&mut rng);
            prop_assert!(best <= sthosvd_chain_flops(&meta, &perm) * (1.0 + 1e-12));
        }
    }

    /// Tree structural invariants: TTM count bounds from §3.2.
    #[test]
    fn tree_size_bounds(meta in meta_strategy(6)) {
        let n = meta.order();
        let perm: Vec<usize> = (0..n).collect();
        let chain = chain_tree(&meta, &perm);
        prop_assert_eq!(chain.num_ttms(), n * (n - 1));
        let bal = balanced_tree(&meta, &perm);
        prop_assert!(bal.num_ttms() <= n * (n - 1));
        let opt = optimal_tree(&meta).tree;
        // Lower bound: each leaf needs >= 1 dedicated TTM except via reuse;
        // any valid tree needs at least N internal nodes for N >= 2.
        prop_assert!(opt.num_ttms() >= n);
        prop_assert!(opt.num_ttms() <= n * (n - 1));
    }

    /// Scaling metadata preserves planner decisions' relative ordering of
    /// tree costs (flops scale ~uniformly).
    #[test]
    fn tree_cost_ratios_roughly_scale_invariant(meta in meta_strategy(4)) {
        prop_assume!(meta.input().dims().iter().all(|&l| l >= 50));
        let scaled = meta.scaled_down(2);
        // Only compare when scaling kept every compression factor close.
        let close = (0..meta.order()).all(|n| (meta.h(n) - scaled.h(n)).abs() < 0.05);
        prop_assume!(close);
        let perm: Vec<usize> = (0..meta.order()).collect();
        let r_full = tree_flops(&chain_tree(&meta, &perm), &meta) / optimal_flops(&meta);
        let r_scaled = tree_flops(&chain_tree(&scaled, &perm), &scaled) / optimal_flops(&scaled);
        // "Roughly": integer rounding of K perturbs h slightly, so allow a
        // generous relative band — the point is that ratios do not collapse
        // or explode under scaling.
        let tol = 0.2 * r_full.max(r_scaled) + 0.1;
        prop_assert!((r_full - r_scaled).abs() < tol, "ratios {r_full} vs {r_scaled}");
    }
}
