//! Percentile-curve summaries (Figures 10a/b and 11).
//!
//! The paper normalizes each tensor's metric by the reference strategy's
//! value (so the reference is 1 everywhere), sorts the ratios, and plots
//! value against percentile: a point `(k, t)` means "for `k`% of the
//! tensors, the normalized value is below `t`".

/// A normalized percentile curve.
#[derive(Clone, Debug, PartialEq)]
pub struct PercentileCurve {
    /// Sorted normalized values (ascending).
    pub values: Vec<f64>,
}

impl PercentileCurve {
    /// The value at percentile `p ∈ [0, 100]` (nearest-rank).
    ///
    /// # Panics
    /// Panics if the curve is empty or `p` is out of range.
    pub fn at(&self, p: f64) -> f64 {
        assert!(!self.values.is_empty(), "empty percentile curve");
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if p == 0.0 {
            return self.values[0];
        }
        let rank = ((p / 100.0) * self.values.len() as f64).ceil() as usize;
        self.values[rank.clamp(1, self.values.len()) - 1]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.at(50.0)
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("empty percentile curve")
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// `(percentile, value)` pairs at integer percentiles 1..=100 — the
    /// series a plot would draw.
    pub fn series(&self) -> Vec<(f64, f64)> {
        (1..=100).map(|p| (p as f64, self.at(p as f64))).collect()
    }

    /// Fraction of tensors with value at least `threshold`.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        let n = self.values.len();
        let count = self.values.iter().filter(|&&v| v >= threshold).count();
        count as f64 / n as f64
    }
}

/// Build a percentile curve from raw values.
pub fn percentile_curve(mut values: Vec<f64>) -> PercentileCurve {
    assert!(!values.is_empty(), "need at least one value");
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN metric value"));
    PercentileCurve { values }
}

/// Normalize `metric` by `reference` elementwise (the paper's
/// "normalized time/load/volume") and return the percentile curve of the
/// ratios. Zero reference values are only legal when the metric is also
/// zero; the ratio is taken as 1 there (both strategies are free).
///
/// # Panics
/// Panics on length mismatch or a zero reference with nonzero metric.
pub fn normalized_percentiles(metric: &[f64], reference: &[f64]) -> PercentileCurve {
    assert_eq!(metric.len(), reference.len(), "series length mismatch");
    let ratios: Vec<f64> = metric
        .iter()
        .zip(reference)
        .map(|(&m, &r)| {
            if r == 0.0 {
                assert!(m == 0.0, "metric {m} with zero reference");
                1.0
            } else {
                m / r
            }
        })
        .collect();
    percentile_curve(ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_basics() {
        let c = percentile_curve(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.values, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.at(0.0), 1.0);
        assert_eq!(c.at(25.0), 1.0);
        assert_eq!(c.at(50.0), 2.0);
        assert_eq!(c.at(75.0), 3.0);
        assert_eq!(c.at(100.0), 4.0);
        assert_eq!(c.median(), 2.0);
    }

    #[test]
    fn normalization_sets_reference_to_one() {
        let m = vec![2.0, 4.0, 6.0];
        let r = m.clone();
        let c = normalized_percentiles(&m, &r);
        assert!(c.values.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn ratios_sorted() {
        let m = vec![4.0, 1.0, 9.0];
        let r = vec![2.0, 2.0, 3.0];
        let c = normalized_percentiles(&m, &r);
        assert_eq!(c.values, vec![0.5, 2.0, 3.0]);
    }

    #[test]
    fn zero_over_zero_is_one() {
        let c = normalized_percentiles(&[0.0, 2.0], &[0.0, 1.0]);
        assert_eq!(c.values, vec![1.0, 2.0]);
    }

    #[test]
    fn fraction_at_least() {
        let c = percentile_curve(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at_least(2.5), 0.5);
        assert_eq!(c.fraction_at_least(0.0), 1.0);
        assert_eq!(c.fraction_at_least(5.0), 0.0);
    }

    #[test]
    fn series_has_100_points() {
        let c = percentile_curve(vec![1.0; 7]);
        let s = c.series();
        assert_eq!(s.len(), 100);
        assert_eq!(s[0].0, 1.0);
        assert_eq!(s[99], (100.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "zero reference")]
    fn zero_reference_with_nonzero_metric_panics() {
        let _ = normalized_percentiles(&[1.0], &[0.0]);
    }
}
