//! The real combustion-science tensors of Table 2.
//!
//! The paper derives these from simulations in combustion science (Austin et
//! al.), curtails some axes for memory, and fills them with random data —
//! execution cost depends only on the metadata. We carry the exact Table 2
//! metadata for the analytic experiments and scaled-down variants for the
//! measured runs (documented substitution, DESIGN.md §2).

use tucker_core::TuckerMeta;

/// A named real-world tensor.
#[derive(Clone, Debug)]
pub struct RealTensor {
    /// Paper name (HCCI, TJLR, SP).
    pub name: &'static str,
    /// Table 2 metadata.
    pub meta: TuckerMeta,
}

/// The three tensors of Table 2.
pub fn real_tensors() -> Vec<RealTensor> {
    vec![
        RealTensor {
            name: "HCCI",
            meta: TuckerMeta::new([672, 672, 627, 16], [279, 279, 153, 14]),
        },
        RealTensor {
            name: "TJLR",
            meta: TuckerMeta::new([460, 700, 360, 16, 4], [306, 232, 239, 16, 4]),
        },
        RealTensor {
            name: "SP",
            meta: TuckerMeta::new([500, 500, 500, 11, 10], [81, 129, 127, 7, 6]),
        },
    ]
}

/// Scaled-down variants that keep the mode proportions (and therefore the
/// planner's decisions) while being executable in the simulated universe.
/// `factor` divides every spatial length; small axes (≤ 16) are kept.
pub fn scaled_real_tensors(factor: usize) -> Vec<RealTensor> {
    real_tensors()
        .into_iter()
        .map(|rt| {
            let l: Vec<usize> = rt
                .meta
                .input()
                .dims()
                .iter()
                .map(|&d| if d > 16 { (d / factor).max(2) } else { d })
                .collect();
            let k: Vec<usize> = rt
                .meta
                .core()
                .dims()
                .iter()
                .zip(rt.meta.input().dims())
                .zip(&l)
                .map(|((&kd, &ld), &lnew)| {
                    if ld > 16 {
                        ((kd * lnew) as f64 / ld as f64).round().max(1.0) as usize
                    } else {
                        kd
                    }
                    .min(lnew)
                })
                .collect();
            RealTensor {
                name: rt.name,
                meta: TuckerMeta::new(l, k),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_metadata_exact() {
        let rt = real_tensors();
        assert_eq!(rt.len(), 3);
        assert_eq!(rt[0].meta.input().dims(), &[672, 672, 627, 16]);
        assert_eq!(rt[0].meta.core().dims(), &[279, 279, 153, 14]);
        assert_eq!(rt[1].meta.input().dims(), &[460, 700, 360, 16, 4]);
        assert_eq!(rt[1].meta.core().dims(), &[306, 232, 239, 16, 4]);
        assert_eq!(rt[2].meta.input().dims(), &[500, 500, 500, 11, 10]);
        assert_eq!(rt[2].meta.core().dims(), &[81, 129, 127, 7, 6]);
    }

    #[test]
    fn scaled_variants_preserve_proportions() {
        for (orig, scaled) in real_tensors().iter().zip(scaled_real_tensors(16)) {
            assert_eq!(orig.meta.order(), scaled.meta.order());
            for n in 0..orig.meta.order() {
                assert!(scaled.meta.k(n) <= scaled.meta.l(n));
                if orig.meta.l(n) > 16 {
                    // Compression factor approximately preserved.
                    let h0 = orig.meta.h(n);
                    let h1 = scaled.meta.h(n);
                    assert!(
                        (h0 - h1).abs() < 0.15,
                        "{}: mode {n} h {h0:.3} -> {h1:.3}",
                        orig.name
                    );
                }
            }
            // Small enough to execute.
            assert!(scaled.meta.input_cardinality() < 4e6, "{}", scaled.meta);
        }
    }
}
