//! The metadata benchmark generator (paper §6.1).
//!
//! Recipe from the paper: for each mode, a length `L_n ∈ {20, 50, 100, 400}`
//! and a compression ratio `L_n/K_n ∈ {1.25, 2, 5, 10}` (all sixteen
//! `(L, K)` combinations are integral); tensors with cardinality above
//! `8·10⁹` are discarded. HOOI cost is invariant under mode permutation, so
//! tensors are enumerated as **multisets** of per-mode `(L, ratio)` pairs.
//!
//! The paper reports 1134 five-dimensional and 642 six-dimensional tensors;
//! its exact de-duplication convention is not specified and no convention we
//! tried reproduces those counts (our full multiset enumerations have 10312
//! and 7710 members — see EXPERIMENTS.md). [`paper_sized_subsample`]
//! deterministically thins the full enumeration to exactly the paper's
//! sizes, preserving the parameter-space coverage.

use tucker_core::TuckerMeta;

/// The mode lengths of §6.1.
pub const LENGTHS: [usize; 4] = [20, 50, 100, 400];

/// The compression ratios `L/K` of §6.1 (paired `K` values are integral for
/// every length).
pub const RATIOS: [f64; 4] = [1.25, 2.0, 5.0, 10.0];

/// The cardinality cap of §6.1.
pub const CARDINALITY_CAP: f64 = 8e9;

/// One per-mode choice: `(L, K)`.
fn pair_choices() -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(16);
    for &l in &LENGTHS {
        for &r in &RATIOS {
            let k = (l as f64 / r).round() as usize;
            debug_assert!(
                (l as f64 / r).fract() == 0.0,
                "non-integral K for L={l}, r={r}"
            );
            out.push((l, k));
        }
    }
    out
}

/// Enumerate the full benchmark for `order`-dimensional tensors: all
/// multisets of `(L, K)` pairs of the given size whose input cardinality is
/// at most [`CARDINALITY_CAP`]. Deterministic (lexicographic) order.
pub fn full_enumeration(order: usize) -> Vec<TuckerMeta> {
    assert!(order >= 1, "order must be positive");
    let choices = pair_choices();
    let mut out = Vec::new();
    let mut stack: Vec<usize> = Vec::with_capacity(order);
    enumerate_multisets(&choices, order, 0, 1.0, &mut stack, &mut out);
    out
}

fn enumerate_multisets(
    choices: &[(usize, usize)],
    order: usize,
    min_idx: usize,
    card: f64,
    stack: &mut Vec<usize>,
    out: &mut Vec<TuckerMeta>,
) {
    if stack.len() == order {
        let ls: Vec<usize> = stack.iter().map(|&i| choices[i].0).collect();
        let ks: Vec<usize> = stack.iter().map(|&i| choices[i].1).collect();
        out.push(TuckerMeta::new(ls, ks));
        return;
    }
    for i in min_idx..choices.len() {
        let next_card = card * choices[i].0 as f64;
        // Prune: remaining modes have length >= 20, the minimum; even the
        // smallest completion must fit under the cap.
        let remaining = (order - stack.len() - 1) as i32;
        if next_card * 20f64.powi(remaining) > CARDINALITY_CAP {
            continue;
        }
        stack.push(i);
        enumerate_multisets(choices, order, i, next_card, stack, out);
        stack.pop();
    }
}

/// Deterministically thin `all` to exactly `target` members by taking evenly
/// spaced elements of the canonical enumeration order.
///
/// # Panics
/// Panics if `target` exceeds the enumeration size.
pub fn paper_sized_subsample(all: &[TuckerMeta], target: usize) -> Vec<TuckerMeta> {
    assert!(
        target <= all.len(),
        "cannot subsample {target} from {}",
        all.len()
    );
    if target == all.len() {
        return all.to_vec();
    }
    (0..target)
        .map(|i| {
            // Evenly spaced indices covering the full range.
            let idx = i * all.len() / target;
            all[idx].clone()
        })
        .collect()
}

/// The 5-D benchmark at the paper's size (1134 tensors).
pub fn benchmark_5d() -> Vec<TuckerMeta> {
    paper_sized_subsample(&full_enumeration(5), 1134)
}

/// The 6-D benchmark at the paper's size (642 tensors).
pub fn benchmark_6d() -> Vec<TuckerMeta> {
    paper_sized_subsample(&full_enumeration(6), 642)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pairs_are_integral() {
        let choices = pair_choices();
        assert_eq!(choices.len(), 16);
        for &(l, k) in &choices {
            assert!(k >= 1 && k <= l);
            // K*r == L exactly for one of the ratios.
            assert!(RATIOS
                .iter()
                .any(|&r| (l as f64 / r - k as f64).abs() < 1e-9));
        }
    }

    #[test]
    fn enumeration_respects_cap() {
        for order in [5usize, 6] {
            let all = full_enumeration(order);
            for m in &all {
                assert!(m.input_cardinality() <= CARDINALITY_CAP, "{m}");
                assert_eq!(m.order(), order);
            }
        }
    }

    #[test]
    fn enumeration_counts_are_stable() {
        // Documented in EXPERIMENTS.md; a change here silently changes every
        // percentile figure, so pin the counts.
        assert_eq!(full_enumeration(5).len(), 10312);
        assert_eq!(full_enumeration(6).len(), 7710);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let all = full_enumeration(5);
        let set: std::collections::HashSet<String> = all.iter().map(|m| m.to_string()).collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn multisets_are_canonical() {
        // Each member's (L, K) pairs appear in non-decreasing choice order,
        // so permuted duplicates cannot occur.
        let all = full_enumeration(5);
        // Spot-check: no tensor is a mode permutation of another.
        let canon = |m: &TuckerMeta| {
            let mut pairs: Vec<(usize, usize)> = (0..m.order()).map(|n| (m.l(n), m.k(n))).collect();
            pairs.sort_unstable();
            pairs
        };
        let set: std::collections::HashSet<Vec<(usize, usize)>> = all.iter().map(canon).collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn paper_sized_counts() {
        assert_eq!(benchmark_5d().len(), 1134);
        assert_eq!(benchmark_6d().len(), 642);
    }

    #[test]
    fn subsample_is_deterministic_and_spread() {
        let all = full_enumeration(5);
        let s1 = paper_sized_subsample(&all, 100);
        let s2 = paper_sized_subsample(&all, 100);
        assert_eq!(s1.len(), 100);
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a, b);
        }
        // First and (near-)last elements of the enumeration are covered.
        assert_eq!(&s1[0], &all[0]);
        assert!(all.iter().position(|m| m == s1.last().unwrap()).unwrap() > all.len() * 9 / 10);
    }

    #[test]
    fn max_tensor_is_large_but_capped() {
        let all = full_enumeration(5);
        let max = all
            .iter()
            .map(|m| m.input_cardinality())
            .fold(0.0, f64::max);
        assert!(
            max > 1e9,
            "benchmark should contain billion-element tensors"
        );
        assert!(max <= CARDINALITY_CAP);
    }
}
