//! Benchmark suite for the distributed Tucker reproduction (paper §6.1).
//!
//! * [`generator`] — regenerates the paper's metadata benchmark: 5-D and 6-D
//!   tensors with mode lengths from `{20, 50, 100, 400}`, compression ratios
//!   from `{1.25, 2, 5, 10}`, and an `8·10⁹` cardinality cap, subsampled
//!   deterministically to the paper's 1134 + 642 sizes;
//! * [`real`] — the combustion-science tensors of Table 2 (HCCI, TJLR, SP)
//!   and their scaled-down variants for measured runs;
//! * [`percentile`] — the normalized percentile-curve summaries used by
//!   Figures 10 and 11;
//! * [`driver`] — runs the paper's four-strategy lineup over the suite
//!   analytically (load + volume) or measured (wall time), producing the
//!   series each figure plots;
//! * [`fields`] — synthetic dense fields (combustion-like plumes, video
//!   frames) used to fill tensors for measured runs.

pub mod driver;
pub mod fields;
pub mod generator;
pub mod percentile;
pub mod real;

pub use driver::{analytic_lineup, AnalyticRow};
pub use generator::{benchmark_5d, benchmark_6d, full_enumeration, paper_sized_subsample};
pub use percentile::{normalized_percentiles, percentile_curve, PercentileCurve};
pub use real::{real_tensors, RealTensor};
