//! Experiment drivers: evaluate the paper's strategy lineup over the suite.
//!
//! The analytic driver scores every tensor with the machine-independent
//! models (FLOP load, §3.1; communication volume, §4.1/4.3) — these are the
//! quantities behind Figures 11c/d/f and, as the paper argues (§6.2), the
//! cause of the time results. The measured driver (in `tucker-bench`) runs
//! the engine on scaled tensors for the time figures.

use tucker_core::planner::{GridStrategy, Planner, TreeStrategy};
use tucker_core::TuckerMeta;

/// Analytic metrics of one strategy on one tensor.
#[derive(Clone, Debug)]
pub struct AnalyticRow {
    /// Strategy label, e.g. `"(opt-tree, dynamic)"`.
    pub strategy: String,
    /// Model FLOP count of the TTM component.
    pub flops: f64,
    /// Model communication volume (elements).
    pub volume: f64,
}

/// Evaluate the paper's four-strategy lineup on one tensor's metadata.
///
/// Returns rows in the order: `(chain-K, static)`, `(chain-h, static)`,
/// `(balanced, static)`, `(opt-tree, dynamic)`.
pub fn analytic_lineup(meta: &TuckerMeta, nranks: usize) -> Vec<AnalyticRow> {
    let planner = Planner::new(meta.clone(), nranks);
    planner
        .paper_lineup()
        .into_iter()
        .map(|plan| AnalyticRow {
            strategy: plan.name(),
            flops: plan.flops,
            volume: plan.volume,
        })
        .collect()
}

/// Evaluate `(opt-tree, static)` vs `(opt-tree, dynamic)` — the comparison
/// behind Figures 11e/f. Returns `(static_volume, dynamic_volume)`.
pub fn gridding_comparison(meta: &TuckerMeta, nranks: usize) -> (f64, f64) {
    let planner = Planner::new(meta.clone(), nranks);
    let stat = planner.plan(TreeStrategy::Optimal, GridStrategy::StaticOptimal);
    let dynamic = planner.plan(TreeStrategy::Optimal, GridStrategy::Dynamic);
    (stat.volume, dynamic.volume)
}

/// Evaluate the computational-load lineup — `(opt-tree, static)` against the
/// heuristics, the comparison behind Figures 11c/d. Returns
/// `(chain_k, chain_h, balanced, opt)` FLOPs.
pub fn load_comparison(meta: &TuckerMeta) -> (f64, f64, f64, f64) {
    use tucker_core::cost::tree_flops;
    use tucker_core::opt_tree::optimal_flops;
    use tucker_core::tree::{balanced_tree, chain_tree, ModeOrdering};

    let chain_k = tree_flops(
        &chain_tree(meta, &ModeOrdering::ByCostFactor.permutation(meta)),
        meta,
    );
    let chain_h = tree_flops(
        &chain_tree(meta, &ModeOrdering::ByCompression.permutation(meta)),
        meta,
    );
    let balanced = tree_flops(
        &balanced_tree(meta, &(0..meta.order()).collect::<Vec<_>>()),
        meta,
    );
    let opt = optimal_flops(meta);
    (chain_k, chain_h, balanced, opt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TuckerMeta {
        TuckerMeta::new([100, 50, 400, 20, 20], [20, 25, 40, 4, 2])
    }

    #[test]
    fn lineup_order_and_flop_dominance() {
        let rows = analytic_lineup(&meta(), 32);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3].strategy, "(opt-tree, dynamic)");
        // FLOP dominance holds over every tree; volume dominance only holds
        // within a fixed tree (see gridding_comparison).
        for r in &rows[..3] {
            assert!(rows[3].flops <= r.flops + 1e-6, "{}", r.strategy);
        }
    }

    #[test]
    fn gridding_dynamic_never_worse() {
        let (s, d) = gridding_comparison(&meta(), 32);
        assert!(d <= s + 1e-6);
    }

    #[test]
    fn load_opt_never_worse() {
        let (ck, ch, b, o) = load_comparison(&meta());
        assert!(o <= ck && o <= ch && o <= b);
    }
}
