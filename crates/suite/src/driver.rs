//! Experiment drivers: evaluate the paper's strategy lineup over the suite.
//!
//! The analytic driver scores every tensor with the machine-independent
//! models (FLOP load, §3.1; communication volume, §4.1/4.3) — these are the
//! quantities behind Figures 11c/d/f and, as the paper argues (§6.2), the
//! cause of the time results. The measured driver (in `tucker-bench`) runs
//! the engine on scaled tensors for the time figures. The *scaling* driver
//! replays the engine at paper-scale rank counts (P = 2⁶…2¹³) under the
//! virtual-time α–β mode — the strong-scaling analogue of Figures 10a/11a
//! that honest measured runs cannot reach.

use tucker_core::engine::{
    run_distributed_hooi_cfg, run_distributed_hooi_mesh, EngineConfig, FailurePolicy, InjectedFault,
};
use tucker_core::executor::{self, RayonBackend, SeqBackend, SweepBackend};
use tucker_core::plan::brute_force::{enumerate_all_trees, min_sweep_cost};
use tucker_core::plan::cost::{sweep_cost, CostModel, FlopVolumeModel, NetCostModel};
use tucker_core::plan::grid::candidate_grids;
use tucker_core::plan::{GridStrategy, Planner, SearchBudget, TreeStrategy};
use tucker_core::TuckerMeta;
use tucker_distsim::{MeshCfg, NetModel, VolumeCategory};
use tucker_linalg::{leading_from_gram, Matrix};
use tucker_tensor::subtensor::{extract, Region};
use tucker_tensor::{
    copy_into, gram_threads, gram_view_threads, view_bytes_copied, DenseTensor, Shape, TensorView,
    TensorViewMut, TtmWorkspace,
};

/// Analytic metrics of one strategy on one tensor.
#[derive(Clone, Debug)]
pub struct AnalyticRow {
    /// Strategy label, e.g. `"(opt-tree, dynamic)"`.
    pub strategy: String,
    /// Model FLOP count of the TTM component.
    pub flops: f64,
    /// Model communication volume (elements).
    pub volume: f64,
}

/// Evaluate the paper's four-strategy lineup on one tensor's metadata.
///
/// Returns rows in the order: `(chain-K, static)`, `(chain-h, static)`,
/// `(balanced, static)`, `(opt-tree, dynamic)`.
pub fn analytic_lineup(meta: &TuckerMeta, nranks: usize) -> Vec<AnalyticRow> {
    let planner = Planner::new(meta.clone(), nranks);
    planner
        .paper_lineup()
        .into_iter()
        .map(|plan| AnalyticRow {
            strategy: plan.name(),
            flops: plan.flops,
            volume: plan.volume,
        })
        .collect()
}

/// Evaluate `(opt-tree, static)` vs `(opt-tree, dynamic)` — the comparison
/// behind Figures 11e/f. Returns `(static_volume, dynamic_volume)`.
pub fn gridding_comparison(meta: &TuckerMeta, nranks: usize) -> (f64, f64) {
    let planner = Planner::new(meta.clone(), nranks);
    let stat = planner.plan(TreeStrategy::Optimal, GridStrategy::StaticOptimal);
    let dynamic = planner.plan(TreeStrategy::Optimal, GridStrategy::Dynamic);
    (stat.volume, dynamic.volume)
}

/// Evaluate the computational-load lineup — `(opt-tree, static)` against the
/// heuristics, the comparison behind Figures 11c/d. Returns
/// `(chain_k, chain_h, balanced, opt)` FLOPs.
pub fn load_comparison(meta: &TuckerMeta) -> (f64, f64, f64, f64) {
    use tucker_core::cost::tree_flops;
    use tucker_core::opt_tree::optimal_flops;
    use tucker_core::tree::{balanced_tree, chain_tree, ModeOrdering};

    let chain_k = tree_flops(
        &chain_tree(meta, &ModeOrdering::ByCostFactor.permutation(meta)),
        meta,
    );
    let chain_h = tree_flops(
        &chain_tree(meta, &ModeOrdering::ByCompression.permutation(meta)),
        meta,
    );
    let balanced = tree_flops(
        &balanced_tree(meta, &(0..meta.order()).collect::<Vec<_>>()),
        meta,
    );
    let opt = optimal_flops(meta);
    (chain_k, chain_h, balanced, opt)
}

// ---------------------------------------------------------------- scaling

/// One strategy at one rank count in the virtual-time scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Execution backend that produced this row (the scaling sweep always
    /// runs the distsim backend; the column keys the row against
    /// [`backend_lineup`] output).
    pub backend: &'static str,
    /// Simulated rank count `P`.
    pub nranks: usize,
    /// Strategy label, e.g. `"(opt-tree, dynamic)"`.
    pub strategy: String,
    /// Modeled end-to-end sweep time (CPU + α–β communication), seconds.
    pub wall_s: f64,
    /// Per-rank TTM compute time (max over ranks), seconds.
    pub ttm_compute_s: f64,
    /// Modeled TTM reduce-scatter time, seconds.
    pub ttm_comm_s: f64,
    /// Modeled regrid time, seconds.
    pub regrid_comm_s: f64,
    /// Modeled Gram all-gather/all-reduce time, seconds.
    pub gram_comm_s: f64,
    /// Gram + EVD compute time, seconds.
    pub svd_s: f64,
    /// Ledger: TTM reduce-scatter elements moved by the sweep (the
    /// run-level ledger is exact here — initialization generates no TTM
    /// traffic).
    pub ttm_elements: u64,
    /// Ledger: regrid elements moved by the sweep (run-level ledger, exact
    /// for the same reason).
    pub regrid_elements: u64,
    /// Ledger: Gram elements moved by the **sweep** (per-sweep window, so
    /// it pairs with `gram_comm_s`; the HOSVD-init Gram traffic is
    /// excluded).
    pub gram_elements: u64,
    /// §4.1 closed-form prediction (tree + core chain) — the ledger must
    /// match this exactly.
    pub model_ttm_elements: f64,
    /// §4.3 closed-form regrid bound — the ledger never exceeds it.
    pub model_regrid_elements: f64,
    /// The planner's α–β prediction of the sweep's communication wall
    /// (`NetCostModel::predict_sweep(..).comm_wall`), seconds.
    pub predicted_comm_s: f64,
    /// The engine-executed virtual communication wall (max over ranks of
    /// the per-rank α–β clock), seconds — must match `predicted_comm_s`
    /// within 5% (in practice: exactly).
    pub comm_wall_s: f64,
    /// Relative error of the sweep (identical across strategies).
    pub error: f64,
    /// Host wall time spent replaying this configuration, seconds (how fast
    /// the simulator runs, not a modeled quantity).
    pub host_s: f64,
}

/// Default problem for the scaling sweep: a 5-D tensor whose core
/// (8×8×8×6×6 = 18432) admits valid power-of-two grids up to P = 2¹⁴,
/// small enough that a P = 8192 universe replays in seconds.
pub fn scaling_meta() -> TuckerMeta {
    TuckerMeta::new([16, 12, 12, 10, 10], [8, 8, 8, 6, 6])
}

/// Default rank counts of the sweep (the paper's Figures 10/11 ranges).
pub fn scaling_ranks() -> Vec<usize> {
    vec![64, 256, 1024, 4096, 8192]
}

/// Replay the paper's four-strategy lineup **plus the joint-DP plan**
/// (`(dp, joint)`, ranked under the α–β [`NetCostModel`]) at each rank
/// count under the virtual-time α–β mode (sequential scheduler, no core
/// gather), one HOOI sweep each.
///
/// Every row is self-validating, on two levels:
/// * **volume**: the ledger's TTM reduce-scatter volume must equal the §4.1
///   closed form `Σ (q_n − 1)|Out(u)|` (tree + core chain) within 1e-9
///   relative, and the regrid volume must stay within the §4.3 `Σ |In(u)|`
///   bound;
/// * **virtual time**: the planner's `NetCostModel::predict_sweep`
///   communication wall (and its TTM/Gram splits) must match the
///   engine-executed virtual clocks within 5% — the prediction-vs-execution
///   invariant of DESIGN.md §6 (in practice the match is exact).
///
/// # Panics
/// Panics if a measured volume or virtual clock contradicts its model.
pub fn scaling_sweep(meta: &TuckerMeta, ranks: &[usize], net: NetModel) -> Vec<ScalingRow> {
    let fill = |c: &[usize]| crate::fields::hash_noise(c, 0x5CA1E);
    let cfg = EngineConfig {
        gather_core: false,
        ..EngineConfig::virtual_time(net)
    };
    let mut rows = Vec::new();
    for &p in ranks {
        let planner = Planner::new(meta.clone(), p);
        let net_model = NetCostModel::new(net, p);
        let mut lineup = planner.paper_lineup();
        lineup.push(planner.best_plan_with(&net_model, &SearchBudget::winner_only()));
        for plan in lineup {
            let host0 = std::time::Instant::now();
            let out = run_distributed_hooi_cfg(fill, &plan, 1, &cfg);
            let host_s = host0.elapsed().as_secs_f64();
            let s = &out.per_sweep[0];
            // Sweeps ran once, so the run-level ledger *is* the sweep ledger
            // for TTM and regrid (init generates Gram/Other traffic only) —
            // and it is exact, unlike the per-rank sweep windows. Gram is
            // taken from the sweep stats so it matches `gram_comm_s`'s scope.
            let ttm_elements = out.volume.elements(VolumeCategory::TtmReduceScatter);
            let regrid_elements = out.volume.elements(VolumeCategory::Regrid);
            let gram_elements = s.gram_volume;
            let model_ttm = plan.modeled_sweep_ttm_elements();
            let model_regrid = plan.modeled_regrid_elements();
            assert!(
                (ttm_elements as f64 - model_ttm).abs() <= model_ttm.max(1.0) * 1e-9,
                "{} P={p}: ledger TTM {ttm_elements} vs §4.1 model {model_ttm}",
                plan.name()
            );
            assert!(
                regrid_elements as f64 <= model_regrid * (1.0 + 1e-9) + 1e-9,
                "{} P={p}: ledger regrid {regrid_elements} exceeds §4.3 bound {model_regrid}",
                plan.name()
            );

            // Prediction vs execution: the planner's α–β forecast must
            // match the virtual clocks the engine accumulated.
            let pred = plan.predict_net(&net_model);
            let within =
                |predicted: std::time::Duration, executed: std::time::Duration, what: &str| {
                    let p_ns = predicted.as_nanos() as f64;
                    let e_ns = executed.as_nanos() as f64;
                    assert!(
                        (p_ns - e_ns).abs() <= e_ns.max(1.0) * 0.05,
                        "{} P={p}: predicted {what} {predicted:?} vs executed {executed:?}",
                        plan.name()
                    );
                };
            within(pred.comm_wall, s.comm_wall, "comm wall");
            within(pred.ttm_comm, s.ttm_comm, "TTM comm");
            within(pred.gram_comm, s.gram_comm, "Gram comm");
            // Regrid phase time additionally carries the pack/unpack CPU
            // (see `DistsimBackend::regrid`), so only the pure-α–β side of
            // the comparison is exact: the prediction never exceeds it.
            assert!(
                pred.regrid_comm <= s.regrid_comm + std::time::Duration::from_nanos(1),
                "{} P={p}: predicted regrid {:?} exceeds executed {:?}",
                plan.name(),
                pred.regrid_comm,
                s.regrid_comm
            );

            rows.push(ScalingRow {
                backend: "distsim",
                nranks: p,
                strategy: plan.name(),
                wall_s: s.wall.as_secs_f64(),
                ttm_compute_s: s.ttm_compute.as_secs_f64(),
                ttm_comm_s: s.ttm_comm.as_secs_f64(),
                regrid_comm_s: s.regrid_comm.as_secs_f64(),
                gram_comm_s: s.gram_comm.as_secs_f64(),
                svd_s: s.svd.as_secs_f64(),
                ttm_elements,
                regrid_elements,
                gram_elements,
                model_ttm_elements: model_ttm,
                model_regrid_elements: model_regrid,
                predicted_comm_s: pred.comm_wall.as_secs_f64(),
                comm_wall_s: s.comm_wall.as_secs_f64(),
                error: s.error,
                host_s,
            });
        }
    }
    rows
}

/// Strategy count per rank count in [`scaling_sweep`] output (the paper's
/// four plus `(dp, joint)`).
pub const SCALING_STRATEGIES: usize = 5;

// --------------------------------------------------------------- topology

/// One rank count in the topology comparison ([`topology_sweep`]): the
/// topology-aware DP plan against the flat-model DP plan, both executed on
/// the same hierarchical simulator.
#[derive(Clone, Debug)]
pub struct TopologyRow {
    /// Simulated rank count `P`.
    pub nranks: usize,
    /// The topology-aware plan's label.
    pub topo_plan: String,
    /// The topology-aware plan's initial grid (axes-reordered variants show
    /// their rank→grid axis order as an `[a=…]` suffix).
    pub topo_initial_grid: String,
    /// The flat-model plan's label.
    pub flat_plan: String,
    /// The flat-model plan's initial grid.
    pub flat_initial_grid: String,
    /// Executed virtual communication wall of the **topology-aware** plan on
    /// the hierarchical simulator, seconds.
    pub topo_comm_s: f64,
    /// Executed virtual communication wall of the **flat-model** plan on the
    /// same hierarchical simulator, seconds.
    pub flat_comm_s: f64,
    /// `NetCostModel::predict_sweep` forecast for the topology-aware plan
    /// under the hierarchical model — matches `topo_comm_s` exactly.
    pub topo_predicted_comm_s: f64,
    /// Forecast for the flat-model plan **under the hierarchical model** —
    /// matches `flat_comm_s` exactly (the prediction replays whatever grids
    /// the plan carries; it does not require the plan to have been ranked
    /// under this model).
    pub flat_predicted_comm_s: f64,
    /// Control: the flat-model plan executed on the flat simulator, seconds.
    pub control_comm_s: f64,
    /// Forecast for the control — matches `control_comm_s` exactly.
    pub control_predicted_comm_s: f64,
    /// `flat_comm_s / topo_comm_s` — how much executed communication the
    /// topology-aware plan saves (> 1 means the topology-aware plan wins).
    pub comm_speedup: f64,
    /// End-to-end modeled sweep wall of the topology-aware plan, seconds.
    pub topo_wall_s: f64,
    /// Host wall time spent replaying this rank count, seconds.
    pub host_s: f64,
}

/// Compare topology-aware planning against flat-model planning at each rank
/// count: plan once under the hierarchical [`NetCostModel`] (which sees link
/// classes and may pick axes-reordered, node-aligned grids) and once under a
/// flat model carrying the same inter-node α–β, then execute **both** plans
/// on the hierarchical simulator (`hier`, e.g. [`NetModel::cluster`]) for
/// one HOOI sweep and record the executed virtual communication walls.
///
/// Every row is self-validating:
/// * the predicted communication wall matches the executed one **to the
///   nanosecond** for all three runs (both plans on the hierarchical
///   simulator, plus the flat-simulator control) — the PR 5 invariant per
///   topology;
/// * the topology-aware plan never loses to the flat-model plan on executed
///   communication. (The *strict* win at paper-scale rank counts is asserted
///   by the bench experiment and CI, not here, so small smoke sweeps where
///   both models pick the same plan stay valid.)
///
/// # Panics
/// Panics if a prediction misses its executed clock or the topology-aware
/// plan loses.
pub fn topology_sweep(meta: &TuckerMeta, ranks: &[usize], hier: NetModel) -> Vec<TopologyRow> {
    assert!(
        hier.is_hierarchical(),
        "topology sweep needs a hierarchical model"
    );
    let flat = hier.flattened();
    let fill = |c: &[usize]| crate::fields::hash_noise(c, 0x5CA1E);
    let hier_cfg = EngineConfig {
        gather_core: false,
        ..EngineConfig::virtual_time(hier)
    };
    let flat_cfg = EngineConfig {
        gather_core: false,
        ..EngineConfig::virtual_time(flat)
    };
    let mut rows = Vec::new();
    for &p in ranks {
        let planner = Planner::new(meta.clone(), p);
        let hier_model = NetCostModel::new(hier, p);
        let flat_model = NetCostModel::new(flat, p);
        // The topology-aware side builds the full portfolio (hierarchical
        // DP candidates, the topology-blind winner, node-aligned
        // relabelings) and lets the exact predict_sweep replay pick; the
        // flat side is the plain DP winner (the baseline a topology-blind
        // planner would ship).
        let topo_plan = planner.best_plan_net(&hier_model, &SearchBudget::default());
        let flat_plan = planner.best_plan_with(&flat_model, &SearchBudget::winner_only());

        let host0 = std::time::Instant::now();
        let topo_out = run_distributed_hooi_cfg(fill, &topo_plan, 1, &hier_cfg);
        let flat_out = run_distributed_hooi_cfg(fill, &flat_plan, 1, &hier_cfg);
        let ctrl_out = run_distributed_hooi_cfg(fill, &flat_plan, 1, &flat_cfg);
        let host_s = host0.elapsed().as_secs_f64();

        // The PR 5 invariant, per topology: predict_sweep replays the exact
        // per-rank α–β charges, so prediction == execution to the nanosecond.
        let exact = |pred: std::time::Duration, exec: std::time::Duration, what: &str| {
            assert_eq!(
                pred.as_nanos(),
                exec.as_nanos(),
                "P={p}: predicted {what} {pred:?} != executed {exec:?}"
            );
        };
        let topo_pred = topo_plan.predict_net(&hier_model);
        let flat_pred = flat_plan.predict_net(&hier_model);
        let ctrl_pred = flat_plan.predict_net(&flat_model);
        exact(
            topo_pred.comm_wall,
            topo_out.per_sweep[0].comm_wall,
            "topo-plan hierarchical comm wall",
        );
        exact(
            flat_pred.comm_wall,
            flat_out.per_sweep[0].comm_wall,
            "flat-plan hierarchical comm wall",
        );
        exact(
            ctrl_pred.comm_wall,
            ctrl_out.per_sweep[0].comm_wall,
            "flat-plan flat comm wall",
        );

        let topo_comm_s = topo_out.per_sweep[0].comm_wall.as_secs_f64();
        let flat_comm_s = flat_out.per_sweep[0].comm_wall.as_secs_f64();
        assert!(
            topo_comm_s <= flat_comm_s * (1.0 + 1e-12),
            "P={p}: topology-aware plan executed {topo_comm_s}s, flat-model plan {flat_comm_s}s"
        );
        rows.push(TopologyRow {
            nranks: p,
            topo_plan: topo_plan.name(),
            topo_initial_grid: topo_plan.grids.initial.to_string(),
            flat_plan: flat_plan.name(),
            flat_initial_grid: flat_plan.grids.initial.to_string(),
            topo_comm_s,
            flat_comm_s,
            topo_predicted_comm_s: topo_pred.comm_wall.as_secs_f64(),
            flat_predicted_comm_s: flat_pred.comm_wall.as_secs_f64(),
            control_comm_s: ctrl_out.per_sweep[0].comm_wall.as_secs_f64(),
            control_predicted_comm_s: ctrl_pred.comm_wall.as_secs_f64(),
            comm_speedup: flat_comm_s / topo_comm_s.max(f64::MIN_POSITIVE),
            topo_wall_s: topo_out.per_sweep[0].wall.as_secs_f64(),
            host_s,
        });
    }
    rows
}

// --------------------------------------------------------------- recovery

/// One recovery-vs-fail-stop comparison at one rank count
/// ([`recovery_bench`]).
#[derive(Clone, Debug)]
pub struct RecoveryRow {
    /// Rank count before the failure.
    pub nranks: usize,
    /// Live ranks the resumed epoch ran on (survivors clamped to the
    /// largest count with a valid grid on the core shape).
    pub survivors: usize,
    /// Sweep the injected failure struck.
    pub fail_sweep: usize,
    /// Sweep the resumed epoch restarted from (committed-sweep count).
    pub resumed_sweep: usize,
    /// Leaf factors of the interrupted sweep salvaged into the resume.
    pub salvaged_leaves: usize,
    /// Tensor elements seeded from survivors' blocks instead of the field.
    pub reused_elements: u64,
    /// Plan name the survivor re-plan chose.
    pub replanned: String,
    /// Host wall of the full recovered run (prefix + re-plan + resume).
    pub recover_total_s: f64,
    /// Host wall from the failure to completion under recovery
    /// (`recover_total_s` minus the measured pre-failure prefix).
    pub time_to_recover_s: f64,
    /// Host wall a fail-stop policy pays *after* the failure: a
    /// from-scratch run on the survivor count, full sweep budget.
    pub restart_total_s: f64,
    /// Committed sweeps recovery re-executes (work discarded by recovery).
    pub wasted_sweeps_recover: usize,
    /// Committed sweeps fail-stop re-executes (all pre-failure sweeps).
    pub wasted_sweeps_failstop: usize,
    /// Final relative error of the recovered run.
    pub recovered_error: f64,
    /// Final relative error of the from-scratch survivor run.
    pub failstop_error: f64,
}

/// Sweep budget of [`recovery_bench`] runs.
pub const RECOVERY_SWEEPS: usize = 2;
/// Sweep the injected failure strikes in [`recovery_bench`].
pub const RECOVERY_FAIL_SWEEP: usize = 1;
/// Leaves of the failure sweep completed before the injected death.
pub const RECOVERY_FAIL_AFTER_LEAVES: usize = 2;

/// Measure failure recovery against fail-stop at each rank count: kill rank
/// `P/2` mid-sweep (sweep [`RECOVERY_FAIL_SWEEP`], after
/// [`RECOVERY_FAIL_AFTER_LEAVES`] leaves) under
/// [`FailurePolicy::Recover`], and compare the recovered run against the
/// two fail-stop halves — an [`FailurePolicy::Abort`] run of the same fault
/// (the pre-failure prefix) plus a from-scratch run on the survivor count
/// (the restart).
///
/// Every row is self-validating: exactly one recovery round, live blocks
/// reused, the recovered final error within 1e-10 of the from-scratch
/// survivor run (DESIGN.md §9), and recovery never re-executing more
/// committed sweeps than fail-stop discards.
///
/// # Panics
/// Panics if a recovered run contradicts the from-scratch differential or
/// the recovery bookkeeping.
pub fn recovery_bench(meta: &TuckerMeta, ranks: &[usize], net: NetModel) -> Vec<RecoveryRow> {
    let fill = |c: &[usize]| crate::fields::hash_noise(c, 0x5CA1E);
    let recover_cfg = EngineConfig {
        gather_core: false,
        on_failure: FailurePolicy::recover(),
        ..EngineConfig::virtual_time(net)
    };
    let abort_cfg = EngineConfig {
        gather_core: false,
        ..EngineConfig::virtual_time(net)
    };
    let mesh = MeshCfg::default();
    let mut rows = Vec::new();
    for &p in ranks {
        let fault = InjectedFault {
            rank: p / 2,
            sweep: RECOVERY_FAIL_SWEEP,
            after_leaves: RECOVERY_FAIL_AFTER_LEAVES,
        };

        let host0 = std::time::Instant::now();
        let out = run_distributed_hooi_mesh(
            fill,
            meta,
            p,
            RECOVERY_SWEEPS,
            &recover_cfg,
            &mesh,
            Some(fault),
        );
        let recover_total_s = host0.elapsed().as_secs_f64();
        assert_eq!(out.recoveries.len(), 1, "P={p}: exactly one recovery round");
        let ev = out.recoveries[0].clone();
        assert_eq!(ev.dead_ranks, vec![p / 2], "P={p}: the injected rank dies");
        assert!(
            ev.reused_elements > 0,
            "P={p}: live blocks must seed resume"
        );

        // Fail-stop prefix: the same fault under Abort, timed to the panic.
        let host1 = std::time::Instant::now();
        let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_distributed_hooi_mesh(
                fill,
                meta,
                p,
                RECOVERY_SWEEPS,
                &abort_cfg,
                &mesh,
                Some(fault),
            )
        }));
        let prefix_s = host1.elapsed().as_secs_f64();
        assert!(aborted.is_err(), "P={p}: Abort must re-raise the failure");

        // Fail-stop restart: from scratch on the survivor count, full
        // budget — also the 1e-10 differential oracle for the recovery.
        let host2 = std::time::Instant::now();
        let clean = run_distributed_hooi_mesh(
            fill,
            meta,
            ev.survivors,
            RECOVERY_SWEEPS,
            &recover_cfg,
            &mesh,
            None,
        );
        let restart_total_s = host2.elapsed().as_secs_f64();
        let recovered_error = out.per_sweep.last().unwrap().error;
        let failstop_error = clean.per_sweep.last().unwrap().error;
        assert!(
            (recovered_error - failstop_error).abs() < 1e-10,
            "P={p}: recovered {recovered_error} vs from-scratch {failstop_error}"
        );

        let wasted_recover = RECOVERY_FAIL_SWEEP - ev.resumed_sweep;
        let wasted_failstop = RECOVERY_FAIL_SWEEP;
        assert!(wasted_recover <= wasted_failstop);
        rows.push(RecoveryRow {
            nranks: p,
            survivors: ev.survivors,
            fail_sweep: RECOVERY_FAIL_SWEEP,
            resumed_sweep: ev.resumed_sweep,
            salvaged_leaves: ev.salvaged_leaves,
            reused_elements: ev.reused_elements,
            replanned: ev.replanned,
            recover_total_s,
            time_to_recover_s: (recover_total_s - prefix_s).max(0.0),
            restart_total_s,
            wasted_sweeps_recover: wasted_recover,
            wasted_sweeps_failstop: wasted_failstop,
            recovered_error,
            failstop_error,
        });
    }
    rows
}

// ---------------------------------------------------------------- planner

/// One (meta, P, model) certification case of [`dp_certification`].
#[derive(Clone, Debug)]
pub struct DpCertRow {
    /// The problem.
    pub meta: String,
    /// Rank count.
    pub nranks: usize,
    /// Cost-model label.
    pub model: &'static str,
    /// The joint DP winner's cost under that model.
    pub dp_cost: f64,
    /// The exhaustive oracle: min cost over every tree × grid assignment.
    pub oracle_cost: f64,
    /// Candidate (tree × assignment-space) pairs the oracle enumerated.
    pub candidates: usize,
    /// Whether the DP winner matched the oracle within 1e-9 relative.
    pub agreed: bool,
}

/// Certify the joint grid × tree × order DP against full brute-force
/// enumeration (every TTM-tree, every grid assignment) under **both** cost
/// models, on a fixed battery of small problems. Returns one row per
/// (meta, P, model); `agreed` must be `true` on every row (asserted by the
/// planner experiment and CI).
pub fn dp_certification() -> Vec<DpCertRow> {
    // N ≤ 3 keeps the oracle truly exhaustive (every tree × every
    // assignment); larger orders are covered by the sampling proptests.
    // The 16³ case has a symmetric mode class; the fully symmetric 40³
    // case at P=16 additionally forces an *uneven* split across the class
    // (<2,2,4> orbits), pinning the orbit-representative scoring: the
    // core-chain price is class-order-sensitive, so a naive mirror-grid
    // dedup would return a ~2% suboptimal plan here under the net model.
    let cases = [
        (TuckerMeta::new([16, 16], [4, 4]), 4usize),
        (TuckerMeta::new([20, 50, 100], [4, 25, 10]), 4),
        (TuckerMeta::new([16, 16, 16], [4, 2, 4]), 4),
        (TuckerMeta::new([40, 40, 40], [4, 4, 4]), 16),
    ];
    let mut rows = Vec::new();
    for (meta, p) in cases {
        let grids = candidate_grids(&meta, p);
        let trees = enumerate_all_trees(&meta);
        let planner = Planner::new(meta.clone(), p);
        let net = NetCostModel::new(NetModel::bgq(), p);
        let models: [&dyn CostModel; 2] = [&FlopVolumeModel, &net];
        for model in models {
            let dp = planner.best_plan_with(model, &SearchBudget::winner_only());
            let dp_cost = sweep_cost(model, &meta, &dp.tree, &dp.grids);
            let mut oracle = f64::INFINITY;
            for tree in &trees {
                oracle = oracle.min(min_sweep_cost(tree, &meta, &grids, model));
            }
            rows.push(DpCertRow {
                meta: meta.to_string(),
                nranks: p,
                model: model.name(),
                dp_cost,
                oracle_cost: oracle,
                candidates: trees.len() * grids.len(),
                agreed: (dp_cost - oracle).abs() <= oracle.abs().max(1.0) * 1e-9,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- backends

/// One execution backend's result on one problem in the backend comparison.
#[derive(Clone, Debug)]
pub struct BackendRow {
    /// Backend label: `"seq"`, `"rayon"`, or `"distsim"`.
    pub backend: &'static str,
    /// Worker/rank count the backend ran with.
    pub threads: usize,
    /// End-to-end sweep time, summed over sweeps (fastest of the reps),
    /// seconds. Initialization is excluded on every backend.
    pub wall_s: f64,
    /// TTM compute time, summed over sweeps, seconds.
    pub ttm_s: f64,
    /// Gram + EVD time, summed over sweeps, seconds.
    pub svd_s: f64,
    /// Relative error after the last sweep (must agree across backends).
    pub error: f64,
}

/// The engine's HOSVD-style initialization on the host: leading
/// eigenvectors of each mode's Gram of the raw tensor (identical to the
/// distributed init, so every backend starts from the same factors).
fn hosvd_init_factors(t: &DenseTensor, meta: &TuckerMeta) -> Vec<Matrix> {
    (0..meta.order())
        .map(|n| leading_from_gram(&tucker_tensor::gram(t, n), meta.k(n)).u)
        .collect()
}

/// Shared fixture of one backend-comparison problem.
struct HostRunCtx<'a> {
    t: &'a DenseTensor,
    meta: &'a TuckerMeta,
    tree: &'a tucker_core::tree::TtmTree,
    init: &'a [Matrix],
    input_norm_sq: f64,
    sweeps: usize,
    reps: usize,
}

/// Run `cx.sweeps` HOOI sweeps of the fixture's tree on a host backend,
/// `cx.reps` times; return the **fastest** rep's `(wall_s, ttm_s, svd_s,
/// error)` — min-of-reps is the standard noise-robust figure for comparing
/// backends on a timeshared host (a slow rep only ever means interference,
/// never a faster kernel).
fn host_backend_run<B: SweepBackend<Tensor = DenseTensor>>(
    mut mk: impl FnMut() -> B,
    cx: &HostRunCtx<'_>,
) -> (f64, f64, f64, f64) {
    let HostRunCtx {
        t,
        meta,
        tree,
        init,
        input_norm_sq,
        sweeps,
        reps,
    } = *cx;
    let mut walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut b = mk();
        let out = executor::hooi_loop(
            &mut b,
            t,
            meta,
            tree,
            init.to_vec(),
            input_norm_sq,
            executor::LoopCfg::exactly(sweeps),
        );
        let wall: f64 = out.per_sweep.iter().map(|s| s.wall.as_secs_f64()).sum();
        let ttm: f64 = out
            .per_sweep
            .iter()
            .map(|s| s.ttm_compute.as_secs_f64())
            .sum();
        let svd: f64 = out.per_sweep.iter().map(|s| s.svd.as_secs_f64()).sum();
        walls.push((wall, ttm, svd, out.errors[out.errors.len() - 1]));
    }
    walls.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    walls[0]
}

/// Compare the three execution backends on one problem: `seq` (strictly
/// sequential host), `rayon` (host cores), and `distsim` (simulated MPI,
/// measured clock, `dist_ranks` ranks). All backends execute the same
/// `(opt-tree, static)` schedule from the same HOSVD init; their errors are
/// asserted to agree within 1e-10 — the backend comparison doubles as a
/// differential test.
///
/// # Panics
/// Panics if any two backends disagree on the final error beyond 1e-10.
pub fn backend_lineup(
    meta: &TuckerMeta,
    sweeps: usize,
    reps: usize,
    dist_ranks: usize,
) -> Vec<BackendRow> {
    assert!(sweeps >= 1 && reps >= 1);
    let fill = |c: &[usize]| crate::fields::hash_noise(c, 0xBAC0);
    let t = DenseTensor::from_fn(meta.input().clone(), fill);
    let input_norm_sq = tucker_tensor::norm::fro_norm_sq(&t);
    let init = hosvd_init_factors(&t, meta);
    let planner = Planner::new(meta.clone(), dist_ranks);
    let plan = planner.plan(TreeStrategy::Optimal, GridStrategy::StaticOptimal);

    let cx = HostRunCtx {
        t: &t,
        meta,
        tree: &plan.tree,
        init: &init,
        input_norm_sq,
        sweeps,
        reps,
    };
    let (w, tt, sv, err_seq) = host_backend_run(SeqBackend::new, &cx);
    let mut rows = vec![BackendRow {
        backend: "seq",
        threads: 1,
        wall_s: w,
        ttm_s: tt,
        svd_s: sv,
        error: err_seq,
    }];

    let rayon_threads = RayonBackend::new().threads();
    let (w, tt, sv, err) = host_backend_run(RayonBackend::new, &cx);
    assert!(
        (err - err_seq).abs() < 1e-10,
        "rayon error {err} vs seq {err_seq}"
    );
    rows.push(BackendRow {
        backend: "rayon",
        threads: rayon_threads,
        wall_s: w,
        ttm_s: tt,
        svd_s: sv,
        error: err,
    });

    // Distributed row: same schedule on the measured distsim backend. One
    // run (the simulated universe timeshares the host, reps add no signal).
    let out = run_distributed_hooi_cfg(fill, &plan, sweeps, &EngineConfig::default());
    let err = out.per_sweep[out.per_sweep.len() - 1].error;
    assert!(
        (err - err_seq).abs() < 1e-10,
        "distsim error {err} vs seq {err_seq}"
    );
    rows.push(BackendRow {
        backend: "distsim",
        threads: dist_ranks,
        wall_s: out.per_sweep.iter().map(|s| s.wall.as_secs_f64()).sum(),
        ttm_s: out
            .per_sweep
            .iter()
            .map(|s| s.ttm_compute.as_secs_f64())
            .sum(),
        svd_s: out.per_sweep.iter().map(|s| s.svd.as_secs_f64()).sum(),
        error: err,
    });
    rows
}

// ------------------------------------------------------------------ views

/// Median wall time of `f` over `reps` runs.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut ts: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ts[reps / 2]
}

/// One kernel timing of the views bench: the same Gram/TTM over the same
/// region, view-native vs extract-then-compute (both single-threaded, so
/// the pair is bit-comparable and the difference isolates the copy).
#[derive(Clone, Debug)]
pub struct ViewKernelRow {
    /// Region label: `"boundary"` (contiguous slab) or `"interior"`
    /// (offset in every mode, strided).
    pub region: &'static str,
    /// `"gram"` or `"ttm"`.
    pub kind: &'static str,
    /// Mode the kernel contracts.
    pub mode: usize,
    /// Median seconds for the view-native call.
    pub view_s: f64,
    /// Median seconds for extract-into-fresh-tensor-then-compute.
    pub extract_s: f64,
    /// The two arms agreed to the last bit.
    pub bitwise_equal: bool,
}

impl ViewKernelRow {
    /// Extract-arm time over view-arm time.
    pub fn speedup(&self) -> f64 {
        self.extract_s / self.view_s
    }
}

/// View-native Gram/TTM vs extract-then-compute over a boundary (contiguous)
/// and an interior (strided in every mode) region of a 64^3 tensor, every
/// mode, both kernels. Bit-equality of each pair is recorded per row (and
/// asserted by the `views` experiment).
pub fn view_kernel_bench() -> Vec<ViewKernelRow> {
    use std::hint::black_box;
    const RANK: usize = 16;
    const REPS: usize = 9;
    let t = DenseTensor::from_fn(Shape::new(vec![64, 64, 64]), |c| {
        crate::fields::hash_noise(c, 0x51DE)
    });
    let regions: [(&'static str, Region); 2] = [
        (
            "boundary",
            Region {
                start: vec![0, 0, 0],
                len: vec![64, 64, 32],
            },
        ),
        (
            "interior",
            Region {
                start: vec![5, 7, 9],
                len: vec![48, 48, 48],
            },
        ),
    ];
    let mut ws = TtmWorkspace::new();
    let mut rows = Vec::new();
    for (label, r) in &regions {
        let v = TensorView::region(&t, r);
        for mode in 0..3 {
            // Gram of the region along `mode`.
            let gv = gram_view_threads(&v, mode, 1);
            let sub = DenseTensor::from_vec(r.shape(), extract(&t, r));
            let ge = gram_threads(&sub, mode, 1);
            let gram_equal = gv.as_slice() == ge.as_slice();
            drop(sub);
            let view_s = median_secs(REPS, || {
                black_box(gram_view_threads(black_box(&v), mode, 1));
            });
            let extract_s = median_secs(REPS, || {
                let sub = DenseTensor::from_vec(r.shape(), extract(black_box(&t), r));
                black_box(gram_threads(&sub, mode, 1));
            });
            rows.push(ViewKernelRow {
                region: label,
                kind: "gram",
                mode,
                view_s,
                extract_s,
                bitwise_equal: gram_equal,
            });

            // TTM of the region along `mode` by a RANK x L_mode factor.
            let a = Matrix::from_fn(RANK, r.len[mode], |i, j| {
                crate::fields::hash_noise(&[mode, i, j], 0xA11E)
            });
            let tv = ws.ttm_view_threads(&v, mode, &a, 1);
            let sub = DenseTensor::from_vec(r.shape(), extract(&t, r));
            let te = ws.ttm_threads(&sub, mode, &a, 1);
            let ttm_equal = tv.as_slice() == te.as_slice();
            ws.recycle(tv);
            ws.recycle(te);
            drop(sub);
            let view_s = median_secs(REPS, || {
                let z = ws.ttm_view_threads(black_box(&v), mode, &a, 1);
                ws.recycle(black_box(z));
            });
            let extract_s = median_secs(REPS, || {
                let sub = DenseTensor::from_vec(r.shape(), extract(black_box(&t), r));
                let z = ws.ttm_threads(&sub, mode, &a, 1);
                ws.recycle(black_box(z));
            });
            rows.push(ViewKernelRow {
                region: label,
                kind: "ttm",
                mode,
                view_s,
                extract_s,
                bitwise_equal: ttm_equal,
            });
        }
    }
    rows
}

/// Byte accounting of the regrid pack/unpack rewrite: the seed-idiom wire
/// path (self block staged through a scratch buffer — two copies) against
/// the view path (one direct view-to-view copy), same grids, same tensor.
#[derive(Clone, Debug)]
pub struct RegridBytes {
    /// Strided-copy bytes summed over ranks, wire (seed) arm.
    pub copy_bytes_wire: u64,
    /// Strided-copy bytes summed over ranks, view arm.
    pub copy_bytes_view: u64,
    /// Self-overlap bytes (elements every rank keeps, × 8) — the exact
    /// saving the view path must realize.
    pub self_overlap_bytes: u64,
    /// Cross-rank regrid bytes on the simulated wire (identical by
    /// construction in both arms).
    pub wire_bytes: u64,
    /// Worst per-rank local difference between the two arms (must be 0).
    pub max_abs_diff: f64,
}

/// Run the same 4-rank regrid through `redistribute_via_wire` (seed) and
/// `redistribute` (view path) and account every copied byte.
pub fn regrid_bytes_bench() -> RegridBytes {
    use tucker_distsim::block::rank_region;
    use tucker_distsim::redistribute::{redistribute, redistribute_via_wire};
    use tucker_distsim::{DistTensor, Grid, Universe};

    let global = DenseTensor::from_fn(Shape::new(vec![24, 18, 8]), |c| {
        crate::fields::hash_noise(c, 0x9E9D)
    });
    let g1 = Grid::new([2, 2, 1]);
    let g2 = Grid::new([1, 2, 2]);
    let wire = Universe::run(4, |ctx| {
        let dt = DistTensor::scatter_from_global(ctx, &global, &g1);
        let before = view_bytes_copied();
        let local = redistribute_via_wire(ctx, &dt, &g2).local().clone();
        (local, view_bytes_copied() - before)
    });
    let view = Universe::run(4, |ctx| {
        let dt = DistTensor::scatter_from_global(ctx, &global, &g1);
        let before = view_bytes_copied();
        let local = redistribute(ctx, &dt, &g2).local().clone();
        (local, view_bytes_copied() - before)
    });
    let mut self_overlap_bytes = 0u64;
    let mut max_abs_diff = 0.0f64;
    for (r, ((a, _), (b, _))) in wire.results.iter().zip(&view.results).enumerate() {
        max_abs_diff = max_abs_diff.max(a.max_abs_diff(b));
        let old = rank_region(global.shape(), &g1, r);
        let new = rank_region(global.shape(), &g2, r);
        let kept = old.intersect(&new).map_or(0, |o| o.cardinality());
        self_overlap_bytes += (kept * 8) as u64;
    }
    RegridBytes {
        copy_bytes_wire: wire.results.iter().map(|(_, b)| b).sum(),
        copy_bytes_view: view.results.iter().map(|(_, b)| b).sum(),
        self_overlap_bytes,
        wire_bytes: wire.volume.bytes(tucker_distsim::VolumeCategory::Regrid),
        max_abs_diff,
    }
}

/// Wall time of packing one interior block into a wire buffer: the seed
/// idiom (extract into a fresh canonical buffer, then copy that into the
/// wire buffer — two passes over the data plus an allocation) against the
/// view path (one strided pass straight into the wire buffer).
#[derive(Clone, Debug)]
pub struct PackTiming {
    /// Median seconds, extract-then-pack (seed, two copies).
    pub extract_pack_s: f64,
    /// Median seconds, single view-to-view copy.
    pub view_pack_s: f64,
    /// Payload of one pack (region cardinality × 8 bytes).
    pub bytes: usize,
    /// Both arms produced identical wire bytes.
    pub equal: bool,
}

impl PackTiming {
    /// Seed-arm time over view-arm time.
    pub fn speedup(&self) -> f64 {
        self.extract_pack_s / self.view_pack_s
    }
}

/// Time the regrid pack of an interior (strided in every mode) block of a
/// 96 × 96 × 64 tensor, both ways.
pub fn pack_timing_bench() -> PackTiming {
    use std::hint::black_box;
    const REPS: usize = 15;
    let t = DenseTensor::from_fn(Shape::new(vec![96, 96, 64]), |c| {
        crate::fields::hash_noise(c, 0x9AC0)
    });
    let r = Region {
        start: vec![5, 9, 7],
        len: vec![80, 72, 48],
    };
    let card = r.cardinality();
    let canonical: Vec<usize> = {
        let mut acc = 1usize;
        r.len
            .iter()
            .map(|&d| {
                let s = acc;
                acc *= d;
                s
            })
            .collect()
    };
    let mut buf = vec![0.0f64; card];

    let reference = extract(&t, &r);
    {
        let mut dst = TensorViewMut::from_parts(&mut buf, r.len.clone(), canonical.clone());
        copy_into(&TensorView::region(&t, &r), &mut dst);
    }
    let equal = reference == buf;

    let extract_pack_s = median_secs(REPS, || {
        let staged = extract(black_box(&t), &r);
        buf.copy_from_slice(black_box(&staged));
    });
    let view_pack_s = median_secs(REPS, || {
        let mut dst = TensorViewMut::from_parts(&mut buf, r.len.clone(), canonical.clone());
        copy_into(black_box(&TensorView::region(&t, &r)), &mut dst);
    });
    PackTiming {
        extract_pack_s,
        view_pack_s,
        bytes: card * 8,
        equal,
    }
}

/// Out-of-core tiled sweeps vs the in-core loop on a tensor whose footprint
/// exceeds the workspace byte cap several times over.
#[derive(Clone, Debug)]
pub struct OocRow {
    /// Input shape.
    pub dims: Vec<usize>,
    /// Core shape.
    pub ranks: Vec<usize>,
    /// Input footprint in bytes.
    pub tensor_bytes: usize,
    /// Workspace pool cap in bytes.
    pub limit_bytes: usize,
    /// Pool high-water mark after the run (must stay under the cap).
    pub pooled_bytes: usize,
    /// Frames per tile.
    pub tile_len: usize,
    /// HOOI sweeps executed by both arms.
    pub sweeps: usize,
    /// Final relative error, in-core arm.
    pub err_incore: f64,
    /// Final relative error, out-of-core arm.
    pub err_outofcore: f64,
    /// Wall seconds, in-core arm.
    pub incore_s: f64,
    /// Wall seconds, out-of-core arm.
    pub outofcore_s: f64,
}

/// Run STHOSVD + a fixed number of HOOI sweeps in-core and out-of-core
/// (tiled, workspace capped at a quarter of the tensor) on the same input.
pub fn views_outofcore_bench() -> OocRow {
    use tucker_core::executor::LoopCfg;
    use tucker_core::{full_recompute, tucker_outofcore};

    let dims = vec![48usize, 48, 64];
    let ranks = vec![6usize, 6, 5];
    const TILE: usize = 8;
    const SWEEPS: usize = 3;
    let t = DenseTensor::from_fn(Shape::new(dims.clone()), |c| {
        crate::fields::video_field(c, &[48, 48, 64])
    });
    let meta = TuckerMeta::new(dims.clone(), ranks.clone());
    let tensor_bytes = t.cardinality() * std::mem::size_of::<f64>();
    let limit_bytes = tensor_bytes / 4;
    let cfg = LoopCfg::exactly(SWEEPS);

    let t0 = std::time::Instant::now();
    let (_, err_incore, _) = full_recompute(&t, &meta, cfg);
    let incore_s = t0.elapsed().as_secs_f64();

    let mut ws = TtmWorkspace::with_limit(limit_bytes);
    let t0 = std::time::Instant::now();
    let ooc = tucker_outofcore(&t, &meta, TILE, cfg, &mut ws);
    let outofcore_s = t0.elapsed().as_secs_f64();

    OocRow {
        dims,
        ranks,
        tensor_bytes,
        limit_bytes,
        pooled_bytes: ws.pooled_bytes(),
        tile_len: TILE,
        sweeps: SWEEPS,
        err_incore,
        err_outofcore: *ooc.errors.last().expect("at least one sweep"),
        incore_s,
        outofcore_s,
    }
}

/// Sliding-window incremental Tucker vs per-push cold recompute.
#[derive(Clone, Debug)]
pub struct IncrementalRow {
    /// Number of window advances.
    pub pushes: usize,
    /// Window shape.
    pub window: Vec<usize>,
    /// Frames appended per push.
    pub slab_len: usize,
    /// Total seconds across pushes, incremental arm.
    pub inc_total_s: f64,
    /// Total seconds across pushes, cold-recompute arm.
    pub full_total_s: f64,
    /// Total HOOI sweeps, incremental arm.
    pub inc_sweeps: usize,
    /// Total HOOI sweeps, cold arm.
    pub full_sweeps: usize,
    /// Worst per-push |err_incremental − err_cold|.
    pub max_err_delta: f64,
}

/// Slide a 16-frame window over a 64-frame synthetic video one frame at a
/// time; each push re-converges incrementally (Gram downdate/update +
/// warm-started HOOI) and cold (STHOSVD + HOOI) under the same loop config.
pub fn views_incremental_bench() -> IncrementalRow {
    use tucker_core::executor::LoopCfg;
    use tucker_core::{full_recompute, SlidingTucker};

    let stream_dims = [32usize, 32, 64];
    let window = vec![32usize, 32, 16];
    let slab_len = 1usize;
    let cfg = LoopCfg {
        max_sweeps: 20,
        tol: 1e-9,
    };
    let window_len = window[2];
    let w0 = DenseTensor::from_fn(Shape::new(window.clone()), |c| {
        crate::fields::video_field(c, &stream_dims)
    });
    let mut st = SlidingTucker::new(w0, vec![4, 4, 3], cfg);
    let meta = st.meta().clone();
    let mut row = IncrementalRow {
        pushes: 0,
        window,
        slab_len,
        inc_total_s: 0.0,
        full_total_s: 0.0,
        inc_sweeps: 0,
        full_sweeps: 0,
        max_err_delta: 0.0,
    };
    let mut push = 1usize;
    while push * slab_len + window_len <= stream_dims[2] {
        let t0 = push * slab_len;
        let slab = DenseTensor::from_fn(Shape::new(vec![32, 32, slab_len]), |c| {
            crate::fields::video_field(
                &[c[0], c[1], c[2] + t0 + window_len - slab_len],
                &stream_dims,
            )
        });
        let tick = std::time::Instant::now();
        let e_inc = st.push_slab(&slab);
        row.inc_total_s += tick.elapsed().as_secs_f64();
        row.inc_sweeps += st.sweeps_last_push();
        let tick = std::time::Instant::now();
        let (_, e_full, cold_sweeps) = full_recompute(st.window(), &meta, cfg);
        row.full_total_s += tick.elapsed().as_secs_f64();
        row.full_sweeps += cold_sweeps;
        row.max_err_delta = row.max_err_delta.max((e_inc - e_full).abs());
        row.pushes += 1;
        push += 1;
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TuckerMeta {
        TuckerMeta::new([100, 50, 400, 20, 20], [20, 25, 40, 4, 2])
    }

    #[test]
    fn lineup_order_and_flop_dominance() {
        let rows = analytic_lineup(&meta(), 32);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3].strategy, "(opt-tree, dynamic)");
        // FLOP dominance holds over every tree; volume dominance only holds
        // within a fixed tree (see gridding_comparison).
        for r in &rows[..3] {
            assert!(rows[3].flops <= r.flops + 1e-6, "{}", r.strategy);
        }
    }

    #[test]
    fn gridding_dynamic_never_worse() {
        let (s, d) = gridding_comparison(&meta(), 32);
        assert!(d <= s + 1e-6);
    }

    #[test]
    fn load_opt_never_worse() {
        let (ck, ch, b, o) = load_comparison(&meta());
        assert!(o <= ck && o <= ch && o <= b);
    }

    #[test]
    fn backend_lineup_rows_agree_and_are_complete() {
        let meta = TuckerMeta::new([10, 9, 8], [4, 3, 3]);
        let rows = backend_lineup(&meta, 2, 1, 4);
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().map(|r| r.backend).collect::<Vec<_>>(),
            ["seq", "rayon", "distsim"]
        );
        // The lineup itself asserts cross-backend error agreement; spot-check
        // the rows are populated.
        for r in &rows {
            assert!(r.wall_s > 0.0, "{}: zero wall", r.backend);
            assert!(r.error.is_finite() && (0.0..=1.0).contains(&r.error));
            assert!(r.threads >= 1);
        }
    }

    #[test]
    fn scaling_sweep_rows_are_model_consistent() {
        // Small rank counts keep the test fast; the in-sweep assertions do
        // the §4.1/§4.3 volume validation AND the predicted-vs-executed
        // virtual-time certification.
        let rows = scaling_sweep(&scaling_meta(), &[4, 16], NetModel::bgq());
        assert_eq!(rows.len(), 2 * SCALING_STRATEGIES);
        for r in &rows {
            assert!(r.wall_s > 0.0, "{}: zero wall", r.strategy);
            assert!(r.error.is_finite());
            assert!(r.wall_s >= r.ttm_comm_s.max(r.gram_comm_s));
            // The 5% invariant is asserted inside the sweep; re-check the
            // reported columns here.
            assert!(
                (r.predicted_comm_s - r.comm_wall_s).abs() <= r.comm_wall_s.max(1e-12) * 0.05,
                "{} P={}: predicted {} vs executed {}",
                r.strategy,
                r.nranks,
                r.predicted_comm_s,
                r.comm_wall_s
            );
        }
        // The DP row is present at every P.
        assert_eq!(
            rows.iter().filter(|r| r.strategy == "(dp, joint)").count(),
            2
        );
        // All strategies compute the same math at a fixed P.
        for chunk in rows.chunks(SCALING_STRATEGIES) {
            for r in &chunk[1..] {
                assert!((r.error - chunk[0].error).abs() < 1e-9);
            }
        }
        // Communication volume grows with P for the same problem.
        let v4: u64 = rows[..SCALING_STRATEGIES]
            .iter()
            .map(|r| r.ttm_elements)
            .sum();
        let v16: u64 = rows[SCALING_STRATEGIES..]
            .iter()
            .map(|r| r.ttm_elements)
            .sum();
        assert!(v16 > v4, "more ranks must move more TTM volume");
    }

    #[test]
    fn topology_sweep_rows_are_model_consistent() {
        // Small rank counts keep the test fast; the in-sweep assertions do
        // the nanosecond predict-vs-execute certification under both
        // topologies and the never-loses comparison.
        let rows = topology_sweep(&scaling_meta(), &[4, 16], NetModel::cluster());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.topo_comm_s > 0.0 && r.flat_comm_s > 0.0);
            assert_eq!(r.topo_predicted_comm_s, r.topo_comm_s);
            assert_eq!(r.flat_predicted_comm_s, r.flat_comm_s);
            assert_eq!(r.control_predicted_comm_s, r.control_comm_s);
            assert!(r.comm_speedup >= 1.0 - 1e-12, "P={}", r.nranks);
            assert!(r.topo_wall_s >= r.topo_comm_s);
        }
    }

    #[test]
    fn dp_certification_agrees_everywhere() {
        let rows = dp_certification();
        assert_eq!(rows.len(), 8, "4 cases x 2 models");
        for r in &rows {
            assert!(
                r.agreed,
                "{} P={} under {}: DP {} vs oracle {} over {} candidates",
                r.meta, r.nranks, r.model, r.dp_cost, r.oracle_cost, r.candidates
            );
            assert!(r.candidates > 0);
        }
    }
}
