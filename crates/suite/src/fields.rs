//! Synthetic dense fields for measured runs.
//!
//! The paper fills its benchmark tensors with random data (execution cost is
//! metadata-only, §6.1). For the examples and measured experiments we also
//! provide *structured* fields so that the decomposition error behaves like
//! it does on real scientific data: smooth multi-scale variation plus a
//! noise floor.

/// A deterministic hash-based pseudo-random value in `[-0.5, 0.5)` for a
/// coordinate. Stateless, `Sync`, reproducible across ranks — usable as the
/// "random data" filler without sharing an RNG.
pub fn hash_noise(coord: &[usize], seed: u64) -> f64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &x in coord {
        h = (h ^ (x as u64 + 1).wrapping_mul(0xff51_afd7_ed55_8ccd))
            .rotate_left(31)
            .wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// A combustion-like plume: a few Gaussian blobs drifting across the spatial
/// modes, modulated along the trailing (variable/timestep) modes, plus 1%
/// noise. Strongly but not exactly compressible.
pub fn combustion_field(coord: &[usize], dims: &[usize]) -> f64 {
    debug_assert_eq!(coord.len(), dims.len());
    let nd = dims.len();
    // Treat the leading (up to 3) modes as space, the rest as channels/time.
    let spatial = nd.min(3);
    let mut channel_phase = 0.0;
    for i in spatial..nd {
        channel_phase += (coord[i] as f64 + 1.0) / dims[i] as f64 * (1.3 + i as f64 * 0.7);
    }
    let mut v = 0.0;
    for (b, &amp) in [0.9, 0.6, 0.4].iter().enumerate() {
        let mut d2 = 0.0;
        for i in 0..spatial {
            let x = coord[i] as f64 / dims[i].max(1) as f64;
            // Blob centers drift with the channel phase.
            let c = 0.2 + 0.3 * b as f64 + 0.1 * (channel_phase + b as f64).sin();
            d2 += (x - c) * (x - c);
        }
        v += amp * (-d2 * 40.0).exp() * (1.0 + 0.5 * (channel_phase * (b as f64 + 1.0)).cos());
    }
    v + 0.01 * hash_noise(coord, 0xC0FFEE)
}

/// A synthetic video: a bright blob moving linearly over frames (last mode),
/// ideal for the tensor-PCA example. `dims = [height, width, frames]` or any
/// trailing-mode-is-time layout.
pub fn video_field(coord: &[usize], dims: &[usize]) -> f64 {
    debug_assert!(coord.len() >= 2);
    let nd = dims.len();
    let t = if nd >= 3 {
        coord[nd - 1] as f64 / dims[nd - 1].max(1) as f64
    } else {
        0.0
    };
    let y = coord[0] as f64 / dims[0].max(1) as f64;
    let x = coord[1] as f64 / dims[1].max(1) as f64;
    let cy = 0.2 + 0.6 * t;
    let cx = 0.8 - 0.6 * t;
    let d2 = (y - cy) * (y - cy) + (x - cx) * (x - cx);
    // Static background texture + moving blob + sensor noise.
    let background = 0.2 * ((y * 9.0).sin() * (x * 7.0).cos());
    background + (-d2 * 60.0).exp() + 0.02 * hash_noise(coord, 0x51DE0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_noise_is_deterministic_and_spread() {
        let a = hash_noise(&[1, 2, 3], 7);
        let b = hash_noise(&[1, 2, 3], 7);
        assert_eq!(a, b);
        assert_ne!(hash_noise(&[1, 2, 3], 7), hash_noise(&[1, 2, 4], 7));
        assert_ne!(hash_noise(&[1, 2, 3], 7), hash_noise(&[1, 2, 3], 8));
        // Rough uniformity: mean near 0 over a sample.
        let mut sum = 0.0;
        for i in 0..1000 {
            sum += hash_noise(&[i, i * 3 + 1], 42);
        }
        assert!((sum / 1000.0).abs() < 0.05);
    }

    #[test]
    fn combustion_field_is_finite_and_varies() {
        let dims = [16usize, 16, 16, 4];
        let mut distinct = std::collections::HashSet::new();
        for i in 0..16 {
            let v = combustion_field(&[i, i / 2, 15 - i, i % 4], &dims);
            assert!(v.is_finite());
            distinct.insert((v * 1e9) as i64);
        }
        assert!(distinct.len() > 8, "field should vary");
    }

    #[test]
    fn video_blob_moves() {
        let dims = [32usize, 32, 8];
        // Blob near (0.2, 0.8) at t=0 and (0.8, 0.2) at t=1.
        let early = video_field(&[6, 26, 0], &dims);
        let late = video_field(&[26, 6, 7], &dims);
        let wrong = video_field(&[6, 26, 7], &dims);
        assert!(early > wrong + 0.2, "early {early} wrong {wrong}");
        assert!(late > wrong + 0.2, "late {late} wrong {wrong}");
    }
}
