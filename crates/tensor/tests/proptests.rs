//! Property-based tests for the tensor substrate.
//!
//! Cases are generated deterministically from a fixed per-test seed (see
//! `vendor/proptest`): CI runs are reproducible, and `PROPTEST_SEED` /
//! `PROPTEST_CASES` explore other streams or bound the case count.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tucker_linalg::Matrix;
use tucker_tensor::norm::fro_norm_sq;
use tucker_tensor::subtensor::{extract, insert, Region};
use tucker_tensor::{
    fold, gram, gram_cols, ttm, ttm_chain, unfold, DenseTensor, Shape, TtmWorkspace,
};

/// Strategy: a small random shape with 1..=4 modes of length 1..=6.
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=6, 1..=4)
}

/// Strategy: shapes whose middle mode has a contiguous inner extent in the
/// `1 < inner < 16` gap, sized so the TTM clears the packing threshold and
/// exercises the slab-grouped small-inner packed path (group boundaries
/// included: outer need not divide the group width).
fn small_inner_shape_strategy() -> impl Strategy<Value = (Vec<usize>, usize)> {
    (2usize..=15, 24usize..=48, 40usize..=96, 8usize..=16)
        .prop_map(|(inner, ln, outer, k)| (vec![inner, ln, outer], k))
}

fn tensor_from_seed(dims: &[usize], seed: u64) -> DenseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = rand::distributions::Uniform::new(-1.0, 1.0);
    DenseTensor::random(Shape::new(dims.to_vec()), &dist, &mut rng)
}

fn mat_from_seed(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = rand::distributions::Uniform::new(-1.0, 1.0);
    Matrix::random(r, c, &dist, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// offset/coord are mutually inverse for random shapes.
    #[test]
    fn offset_coord_inverse(dims in shape_strategy(), salt in 0usize..1000) {
        let s = Shape::new(dims);
        let idx = salt % s.cardinality();
        prop_assert_eq!(s.offset(&s.coord(idx)), idx);
    }

    /// fold(unfold(T, n)) == T for every mode.
    #[test]
    fn unfold_fold_roundtrip(dims in shape_strategy(), seed in 0u64..1000) {
        let t = tensor_from_seed(&dims, seed);
        for n in 0..t.order() {
            let u = unfold(&t, n);
            let back = fold(&u, n, t.shape());
            prop_assert_eq!(back.max_abs_diff(&t), 0.0);
        }
    }

    /// TTM preserves cardinality scaling: |Z| = K * |T| / L_n.
    #[test]
    fn ttm_cardinality(dims in shape_strategy(), seed in 0u64..1000, k in 1usize..5) {
        let t = tensor_from_seed(&dims, seed);
        let n = seed as usize % t.order();
        let a = mat_from_seed(k, t.shape().dim(n), seed + 7);
        let z = ttm(&t, n, &a);
        prop_assert_eq!(z.cardinality(), k * t.cardinality() / t.shape().dim(n));
    }

    /// The slab-grouped small-inner packed TTM (1 < inner < 16, above the
    /// packing threshold) agrees with the explicit-unfold reference and is
    /// bit-identical across worker counts.
    #[test]
    fn small_inner_packed_ttm_matches_unfold((dims, k) in small_inner_shape_strategy(), seed in 0u64..1000) {
        let t = tensor_from_seed(&dims, seed);
        let a = mat_from_seed(k, dims[1], seed + 11);
        let z = ttm(&t, 1, &a);
        let reference = {
            let u = unfold(&t, 1);
            let z = tucker_linalg::gemm(&a, tucker_linalg::Transpose::No, &u, tucker_linalg::Transpose::No, 1.0);
            fold(&z, 1, &t.shape().with_dim(1, k))
        };
        prop_assert!(z.max_abs_diff(&reference) < 1e-12);
        let mut buf = Vec::new();
        let s = tucker_tensor::ttm_into_threads(&t, 1, &a, &mut buf, 4);
        let par = DenseTensor::from_vec(s, buf);
        prop_assert_eq!(par.max_abs_diff(&z), 0.0);
    }

    /// TTM-chain commutativity on two random distinct modes.
    #[test]
    fn chain_commutes(dims in prop::collection::vec(2usize..=5, 2..=4), seed in 0u64..1000) {
        let t = tensor_from_seed(&dims, seed);
        let n1 = seed as usize % t.order();
        let n2 = (n1 + 1) % t.order();
        let a1 = mat_from_seed(2, t.shape().dim(n1), seed + 1);
        let a2 = mat_from_seed(3, t.shape().dim(n2), seed + 2);
        let z12 = ttm_chain(&t, &[(n1, &a1), (n2, &a2)]);
        let z21 = ttm_chain(&t, &[(n2, &a2), (n1, &a1)]);
        prop_assert!(z12.max_abs_diff(&z21) < 1e-12);
    }

    /// TTM with orthonormal rows never increases the Frobenius norm
    /// (A A^T = I implies projection in fiber space).
    #[test]
    fn orthonormal_ttm_contracts(dims in prop::collection::vec(3usize..=6, 2..=3), seed in 0u64..1000) {
        let t = tensor_from_seed(&dims, seed);
        let n = seed as usize % t.order();
        let ln = t.shape().dim(n);
        let k = 1 + (seed as usize % ln);
        // Orthonormal K x Ln: QR of random Ln x K, transposed.
        let q = tucker_linalg::orthonormal_columns(&mat_from_seed(ln, k, seed + 3));
        let a = q.transpose();
        let z = ttm(&t, n, &a);
        prop_assert!(fro_norm_sq(&z) <= fro_norm_sq(&t) * (1.0 + 1e-10));
    }

    /// The fused Gram kernel matches the explicit-unfold reference
    /// `syrk(&unfold(T, n))` elementwise on every mode.
    #[test]
    fn gram_matches_unfold_syrk(dims in shape_strategy(), seed in 0u64..1000) {
        let t = tensor_from_seed(&dims, seed);
        for n in 0..t.order() {
            let g = gram(&t, n);
            let r = tucker_linalg::syrk(&unfold(&t, n));
            prop_assert_eq!(g.shape(), r.shape());
            prop_assert!(g.max_abs_diff(&r) < 1e-12, "mode {}", n);
        }
    }

    /// gram_cols contributions over a random partition of the fiber range
    /// sum to the full Gram matrix.
    #[test]
    fn gram_cols_partition_sums_to_gram(
        dims in shape_strategy(),
        seed in 0u64..1000,
        parts in 1usize..6,
    ) {
        let t = tensor_from_seed(&dims, seed);
        let n = seed as usize % t.order();
        let nf = t.shape().num_fibers(n);
        let full = gram(&t, n);
        // Balanced partition; trailing ranges may be empty when parts > nf.
        let per = nf.div_ceil(parts);
        let mut sum = Matrix::zeros(full.nrows(), full.ncols());
        let mut c0 = 0;
        for _ in 0..parts {
            let len = per.min(nf - c0);
            let part = gram_cols(&t, n, c0, len);
            for (s, p) in sum.as_mut_slice().iter_mut().zip(part.as_slice()) {
                *s += p;
            }
            c0 += len;
        }
        prop_assert!(sum.max_abs_diff(&full) < 1e-12, "mode {} / {} parts", n, parts);
    }

    /// ttm_into with a reused workspace matches fresh `ttm` across a chained
    /// multi-mode sequence (buffer recycling must never corrupt results).
    #[test]
    fn workspace_chain_matches_fresh_ttm(
        dims in prop::collection::vec(2usize..=5, 2..=4),
        seed in 0u64..1000,
    ) {
        let t = tensor_from_seed(&dims, seed);
        let mats: Vec<Matrix> = (0..t.order())
            .map(|n| mat_from_seed(1 + (seed as usize + n) % 4, t.shape().dim(n), seed + n as u64))
            .collect();
        let ops: Vec<(usize, &Matrix)> = mats.iter().enumerate().collect();
        let mut ws = TtmWorkspace::new();
        for _ in 0..2 {
            let z = ws.ttm_chain(&t, &ops);
            let mut r = t.clone();
            for &(n, a) in &ops {
                r = ttm(&r, n, a);
            }
            prop_assert_eq!(z.shape(), r.shape());
            prop_assert_eq!(z.max_abs_diff(&r), 0.0);
            ws.recycle(z);
        }
    }

    /// extract/insert roundtrip on a random sub-region.
    #[test]
    fn region_roundtrip(dims in prop::collection::vec(2usize..=6, 1..=4), seed in 0u64..1000) {
        let t = tensor_from_seed(&dims, seed);
        let mut rng = StdRng::seed_from_u64(seed + 11);
        use rand::Rng;
        let start: Vec<usize> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
        let len: Vec<usize> = dims
            .iter()
            .zip(&start)
            .map(|(&d, &s)| rng.gen_range(1..=(d - s)))
            .collect();
        let r = Region { start, len };
        let data = extract(&t, &r);
        prop_assert_eq!(data.len(), r.cardinality());
        let mut t2 = t.clone();
        insert(&mut t2, &r, &data);
        prop_assert_eq!(t2.max_abs_diff(&t), 0.0);
    }
}
