//! Mode-`n` unfolding (matricization) and its inverse.
//!
//! The mode-`n` unfolding `T(n)` is the `L_n × (|T|/L_n)` matrix whose
//! columns are the mode-`n` fibers, arranged lexicographically by the
//! remaining coordinates (paper §2.1). With the canonical mode-0-fastest
//! layout, the fiber with inner index `i` (enumerating modes `< n`) and outer
//! index `o` (enumerating modes `> n`) is column `i + o·I` where
//! `I = ∏_{j<n} L_j`, and its element `l` sits at linear offset
//! `i + l·I + o·I·L_n` in the tensor buffer.
//!
//! **Invariant:** nothing on a hot path materializes an unfolding. TTMs use
//! the blocked slab kernel ([`crate::ttm`]) and the SVD/Gram step uses the
//! fused slab-wise kernel ([`crate::gram`]), both reading the canonical
//! layout in place. `unfold`/`fold` exist *only* for tests and for the
//! explicit-unfold baseline arm of the kernel-ablation bench; the
//! allocation-regression smoke test in `tucker-core` keeps it that way.

use crate::dense::DenseTensor;
use crate::shape::Shape;
use tucker_linalg::Matrix;

/// Materialize the mode-`n` unfolding `T(n)` as an `L_n × (|T|/L_n)` matrix.
///
/// # Panics
/// Panics if `n` is not a valid mode.
pub fn unfold(t: &DenseTensor, n: usize) -> Matrix {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let ln = shape.dim(n);
    let inner = shape.inner_extent(n);
    let outer = shape.outer_extent(n);
    let ncols = inner * outer;
    let src = t.as_slice();

    let mut out = vec![0.0; ln * ncols];
    // Column (i, o) has elements src[i + l*inner + o*inner*ln] for l in 0..ln.
    for o in 0..outer {
        let slab = o * inner * ln;
        for i in 0..inner {
            let col = i + o * inner;
            let dst = &mut out[col * ln..(col + 1) * ln];
            let mut off = slab + i;
            for d in dst.iter_mut() {
                *d = src[off];
                off += inner;
            }
        }
    }
    Matrix::from_vec(ln, ncols, out)
}

/// Inverse of [`unfold`]: rebuild a tensor of shape `shape` from its mode-`n`
/// unfolding.
///
/// # Panics
/// Panics if the matrix dimensions are inconsistent with `shape` and `n`.
pub fn fold(m: &Matrix, n: usize, shape: &Shape) -> DenseTensor {
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let ln = shape.dim(n);
    let inner = shape.inner_extent(n);
    let outer = shape.outer_extent(n);
    assert_eq!(m.nrows(), ln, "unfolding rows must equal L_n");
    assert_eq!(m.ncols(), inner * outer, "unfolding columns mismatch");

    let mut out = vec![0.0; shape.cardinality()];
    let src = m.as_slice();
    for o in 0..outer {
        let slab = o * inner * ln;
        for i in 0..inner {
            let col = i + o * inner;
            let s = &src[col * ln..(col + 1) * ln];
            let mut off = slab + i;
            for &v in s {
                out[off] = v;
                off += inner;
            }
        }
    }
    DenseTensor::from_vec(shape.clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting(dims: &[usize]) -> DenseTensor {
        let mut k = 0.0;
        DenseTensor::from_fn(Shape::new(dims.to_vec()), |_| {
            k += 1.0;
            k
        })
    }

    #[test]
    fn unfold_mode0_is_reshape() {
        // Mode-0 unfolding of canonical layout is just a reshape: columns are
        // contiguous runs of length L0.
        let t = counting(&[3, 4]);
        let u = unfold(&t, 0);
        assert_eq!(u.shape(), (3, 4));
        assert_eq!(u.as_slice(), t.as_slice());
    }

    #[test]
    fn unfold_columns_are_fibers() {
        let t = DenseTensor::from_fn([2, 3, 4], |c| (c[0] * 100 + c[1] * 10 + c[2]) as f64);
        let u = unfold(&t, 1);
        assert_eq!(u.shape(), (3, 8));
        // Column (i=i0, o=i2) holds T[i0, *, i2].
        for i0 in 0..2 {
            for i2 in 0..4 {
                let col = i0 + i2 * 2;
                for l in 0..3 {
                    assert_eq!(u[(l, col)], t.get(&[i0, l, i2]), "i0={i0} i2={i2} l={l}");
                }
            }
        }
    }

    #[test]
    fn fold_inverts_unfold_all_modes() {
        let t = counting(&[2, 3, 4, 5]);
        for n in 0..4 {
            let u = unfold(&t, n);
            let back = fold(&u, n, t.shape());
            assert_eq!(back.max_abs_diff(&t), 0.0, "mode {n}");
        }
    }

    #[test]
    fn last_mode_unfolding() {
        let t = counting(&[2, 3, 4]);
        let u = unfold(&t, 2);
        assert_eq!(u.shape(), (4, 6));
        for i0 in 0..2 {
            for i1 in 0..3 {
                let col = i0 + i1 * 2;
                for l in 0..4 {
                    assert_eq!(u[(l, col)], t.get(&[i0, i1, l]));
                }
            }
        }
    }

    #[test]
    fn unfold_1d_tensor() {
        let t = counting(&[5]);
        let u = unfold(&t, 0);
        assert_eq!(u.shape(), (5, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_mode_panics() {
        let t = counting(&[2, 2]);
        let _ = unfold(&t, 2);
    }
}
