//! Fused Gram kernels: `G = T(n) · T(n)ᵀ` straight from the canonical
//! layout — **no unfolding is ever materialized**.
//!
//! The mode-`n` unfolding's column `f = i + o·inner` is the fiber starting at
//! linear offset `o·inner·L_n + i` with stride `inner` (see
//! [`crate::unfold`]). Slab `o` — the contiguous block
//! `[o·inner·L_n, (o+1)·inner·L_n)` — is therefore an `inner × L_n`
//! column-major matrix `S_o` whose `L_n` columns are contiguous in memory,
//! and the Gram matrix decomposes into a sum of rank-`inner` updates on
//! contiguous storage:
//!
//! ```text
//! G = T(n)·T(n)ᵀ = Σ_o S_oᵀ · S_o
//! ```
//!
//! [`gram`] evaluates that sum with [`tucker_linalg::syrk_ata_lower`]
//! (lower-triangle dot products over contiguous slab columns), splitting the
//! fiber range across rayon workers with per-worker accumulators merged by a
//! pairwise tree reduction. [`gram_cols`] restricts the sum to a contiguous
//! column range `[c0, c0 + len)` of the unfolding, which is how the
//! distributed Gram takes its balanced `1/q_n` share without copying columns
//! into a scratch matrix.
//!
//! The explicit-unfold formulation `syrk(&unfold(t, n))` survives only as the
//! baseline arm of the kernel-ablation bench; see `ROADMAP.md` and the
//! `BENCH_kernels.json` trajectory for the measured gap.

use crate::dense::DenseTensor;
use rayon::prelude::*;
use tucker_linalg::{mirror_lower, syrk_aat_lower, syrk_ata_lower, Matrix};

/// Minimum multiply-add count before the fiber range is split across threads.
const PAR_MIN_WORK: usize = 1 << 15;

/// Accumulate the lower triangle of the Gram contribution of fibers
/// `[f0, f0 + len)` into `acc` (column-major `L_n × L_n`), walking the slabs
/// that overlap the range.
fn accumulate_fiber_range(t: &DenseTensor, n: usize, f0: usize, len: usize, acc: &mut [f64]) {
    let shape = t.shape();
    let ln = shape.dim(n);
    let inner = shape.inner_extent(n);
    let src = t.as_slice();

    if inner == 1 {
        // Mode 0: fibers are the contiguous columns of the raw buffer viewed
        // as an `L_0 × nf` matrix — rank-1 (axpy) updates, no slab walk.
        syrk_aat_lower(src, ln, f0, f0 + len, acc);
        return;
    }

    let slab_len = inner * ln;
    let f1 = f0 + len;
    let mut f = f0;
    while f < f1 {
        let o = f / inner;
        let i0 = f - o * inner;
        let i1 = inner.min(i0 + (f1 - f));
        let slab = &src[o * slab_len..(o + 1) * slab_len];
        syrk_ata_lower(slab, inner, ln, i0, i1, acc);
        f += i1 - i0;
    }
}

/// The Gram matrix `G = T(n) · T(n)ᵀ` (`L_n × L_n`), computed directly from
/// the canonical layout without materializing the unfolding.
///
/// Numerically equivalent to `syrk(&unfold(t, n))`; the fiber-parallel path
/// regroups the summation per worker, so results can differ by a few ulps.
/// Thread count is heuristic (sequential below a work threshold, one worker
/// per host core above it); execution backends that want explicit control
/// use [`gram_threads`] directly.
///
/// # Panics
/// Panics if `n` is not a valid mode.
pub fn gram(t: &DenseTensor, n: usize) -> Matrix {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let ln = shape.dim(n);
    let work = shape.num_fibers(n) * ln * (ln + 1) / 2;
    gram_threads(t, n, crate::threads::heuristic_threads(work, PAR_MIN_WORK))
}

/// [`gram`] with an **explicit** worker count: the mode-`n` fiber range is
/// split into `threads` contiguous sub-ranges, each accumulated by one
/// worker, merged by a pairwise tree reduction. `threads == 1` is the
/// strictly sequential kernel (no thread is ever spawned, summation order is
/// the canonical fiber order); the size heuristic of [`gram`] does not
/// apply. This is the par-ranged entry point the sweep-executor backends
/// build on (`SeqBackend` pins 1, `RayonBackend` pins the host core count).
///
/// # Panics
/// Panics if `n` is not a valid mode.
pub fn gram_threads(t: &DenseTensor, n: usize, threads: usize) -> Matrix {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let ln = shape.dim(n);
    let nf = shape.num_fibers(n);
    let m = ln * ln;

    let workers = threads.max(1).min(nf);
    if workers <= 1 {
        let mut g = Matrix::zeros(ln, ln);
        accumulate_fiber_range(t, n, 0, nf, g.as_mut_slice());
        mirror_lower(g.as_mut_slice(), ln);
        return g;
    }

    // Per-worker accumulators over contiguous fiber ranges ...
    let per = nf.div_ceil(workers);
    let nchunks = nf.div_ceil(per);
    let mut acc = vec![0.0; nchunks * m];
    acc.par_chunks_mut(m).enumerate().for_each(|(w, buf)| {
        let f0 = w * per;
        let f1 = nf.min(f0 + per);
        accumulate_fiber_range(t, n, f0, f1 - f0, buf);
    });

    // ... merged by pairwise tree reduction into chunk 0.
    let mut width = nchunks;
    while width > 1 {
        let half = width.div_ceil(2);
        let (lo, hi) = acc.split_at_mut(half * m);
        for i in half..width {
            let src = &hi[(i - half) * m..(i - half + 1) * m];
            for (d, s) in lo[(i - half) * m..].iter_mut().zip(src) {
                *d += s;
            }
        }
        width = half;
    }
    acc.truncate(m);
    let mut g = Matrix::from_vec(ln, ln, acc);
    mirror_lower(g.as_mut_slice(), ln);
    g
}

/// Gram contribution of the contiguous unfolding-column range
/// `[c0, c0 + len)`: the `L_n × L_n` matrix `U · Uᵀ` where `U` is
/// `unfold(t, n)` restricted to those columns — computed in place from the
/// canonical layout, no column copy.
///
/// Summing [`gram_cols`] over any partition of `0..num_fibers(n)` yields
/// [`gram`]. An empty range (`len == 0`) returns the zero matrix, so callers
/// may hand trailing ranks empty shares.
///
/// Runs sequentially: the intended caller is one simulated MPI rank, which
/// is already a thread of its own.
///
/// # Panics
/// Panics if `n` is out of range or the column range exceeds the number of
/// mode-`n` fibers.
pub fn gram_cols(t: &DenseTensor, n: usize, c0: usize, len: usize) -> Matrix {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let nf = shape.num_fibers(n);
    assert!(
        c0 + len <= nf,
        "column range {c0}..{} exceeds {nf} mode-{n} fibers",
        c0 + len
    );
    let ln = shape.dim(n);
    let mut g = Matrix::zeros(ln, ln);
    accumulate_fiber_range(t, n, c0, len, g.as_mut_slice());
    mirror_lower(g.as_mut_slice(), ln);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use crate::unfold::unfold;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tucker_linalg::syrk;

    fn rand_tensor(dims: &[usize], seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        DenseTensor::random(Shape::new(dims.to_vec()), &dist, &mut rng)
    }

    #[test]
    fn matches_unfold_syrk_all_modes() {
        let t = rand_tensor(&[5, 4, 3, 6], 1);
        for n in 0..4 {
            let g = gram(&t, n);
            let r = syrk(&unfold(&t, n));
            assert_eq!(g.shape(), r.shape());
            assert!(g.max_abs_diff(&r) < 1e-12, "mode {n}");
        }
    }

    #[test]
    fn parallel_path_matches_reference() {
        // Big enough to clear PAR_MIN_WORK on any mode.
        let t = rand_tensor(&[24, 20, 18], 2);
        for n in 0..3 {
            let g = gram(&t, n);
            let r = syrk(&unfold(&t, n));
            assert!(g.max_abs_diff(&r) < 1e-11, "mode {n}");
        }
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let t = rand_tensor(&[10, 9, 8], 11);
        for n in 0..3 {
            let r = syrk(&unfold(&t, n));
            assert!(gram_threads(&t, n, 1).max_abs_diff(&r) < 1e-12, "mode {n}");
            for w in [2usize, 3, 5, 64] {
                let par = gram_threads(&t, n, w);
                assert!(par.max_abs_diff(&r) < 1e-11, "mode {n}, {w} workers");
            }
        }
    }

    #[test]
    fn gram_is_exactly_symmetric() {
        let t = rand_tensor(&[9, 8, 7], 3);
        for n in 0..3 {
            let g = gram(&t, n);
            for i in 0..t.shape().dim(n) {
                for j in 0..t.shape().dim(n) {
                    assert_eq!(g[(i, j)], g[(j, i)], "mode {n}");
                }
            }
        }
    }

    #[test]
    fn cols_partitions_sum_to_full() {
        let t = rand_tensor(&[4, 5, 6], 4);
        for n in 0..3 {
            let nf = t.shape().num_fibers(n);
            let full = gram(&t, n);
            for parts in [1usize, 2, 3, 7] {
                let per = nf.div_ceil(parts);
                let mut sum = Matrix::zeros(full.nrows(), full.ncols());
                let mut c0 = 0;
                for _ in 0..parts {
                    let len = per.min(nf - c0);
                    let part = gram_cols(&t, n, c0, len);
                    for (s, p) in sum.as_mut_slice().iter_mut().zip(part.as_slice()) {
                        *s += p;
                    }
                    c0 += len;
                }
                assert!(
                    sum.max_abs_diff(&full) < 1e-12,
                    "mode {n}, {parts} partitions"
                );
            }
        }
    }

    #[test]
    fn cols_slices_partial_slabs_correctly() {
        // A range that starts and ends mid-slab on a mode with inner > 1.
        let t = rand_tensor(&[3, 5, 4], 5);
        let u = unfold(&t, 1); // 5 x 12, inner = 3
        let (c0, len) = (2, 7);
        let g = gram_cols(&t, 1, c0, len);
        let mut r = Matrix::zeros(5, 5);
        for j in c0..c0 + len {
            let col = u.col(j);
            for l1 in 0..5 {
                for l2 in 0..5 {
                    r[(l1, l2)] += col[l1] * col[l2];
                }
            }
        }
        assert!(g.max_abs_diff(&r) < 1e-12);
    }

    #[test]
    fn empty_range_gives_zero_matrix() {
        let t = rand_tensor(&[4, 3], 6);
        let g = gram_cols(&t, 0, 3, 0);
        assert_eq!(g.shape(), (4, 4));
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_mode_tensor() {
        let t = rand_tensor(&[7], 7);
        let g = gram(&t, 0);
        let r = syrk(&unfold(&t, 0));
        assert!(g.max_abs_diff(&r) < 1e-13);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_mode_panics() {
        let t = rand_tensor(&[2, 2], 8);
        let _ = gram(&t, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overlong_column_range_panics() {
        let t = rand_tensor(&[2, 3], 9);
        let _ = gram_cols(&t, 0, 2, 2);
    }
}
