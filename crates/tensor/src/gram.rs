//! Fused Gram kernels: `G = T(n) · T(n)ᵀ` straight from the canonical
//! layout — **no unfolding is ever materialized**.
//!
//! The mode-`n` unfolding's column `f = i + o·inner` is the fiber starting at
//! linear offset `o·inner·L_n + i` with stride `inner` (see
//! [`crate::unfold`]). Slab `o` — the contiguous block
//! `[o·inner·L_n, (o+1)·inner·L_n)` — is therefore an `inner × L_n`
//! column-major matrix `S_o` whose `L_n` columns are contiguous in memory,
//! and the Gram matrix decomposes into a sum of rank-`inner` updates on
//! contiguous storage:
//!
//! ```text
//! G = T(n)·T(n)ᵀ = Σ_o S_oᵀ · S_o
//! ```
//!
//! [`gram`] evaluates that sum with [`tucker_linalg::syrk_ata_lower`]
//! (lower-triangle dot products over contiguous slab columns), splitting the
//! fiber range across rayon workers with per-worker accumulators merged by a
//! pairwise tree reduction. [`gram_cols`] restricts the sum to a contiguous
//! column range `[c0, c0 + len)` of the unfolding, which is how the
//! distributed Gram takes its balanced `1/q_n` share without copying columns
//! into a scratch matrix.
//!
//! The explicit-unfold formulation `syrk(&unfold(t, n))` survives only as the
//! baseline arm of the kernel-ablation bench; see `ROADMAP.md` and the
//! `BENCH_kernels.json` trajectory for the measured gap.

use crate::dense::{note_buffer_alloc, DenseTensor};
use crate::view::{AxisSpan, TensorView};
use rayon::prelude::*;
use tucker_linalg::{mirror_lower, pack, syrk_aat_lower, syrk_ata_lower, Matrix};

/// Minimum multiply-add count before the fiber range is split across threads.
const PAR_MIN_WORK: usize = 1 << 15;

/// Accumulate the lower triangle of the Gram contribution of fibers
/// `[f0, f0 + len)` into `acc` (column-major `L_n × L_n`), walking the slabs
/// that overlap the range. `src`/`dims` describe a canonical-layout buffer
/// (a tensor's storage, or a contiguous view's window).
fn accumulate_src_range(
    src: &[f64],
    dims: &[usize],
    n: usize,
    f0: usize,
    len: usize,
    acc: &mut [f64],
) {
    let ln = dims[n];
    let inner: usize = dims[..n].iter().product();

    if inner == 1 {
        // Mode 0: fibers are the contiguous columns of the raw buffer viewed
        // as an `L_0 × nf` matrix — rank-1 (axpy) updates, no slab walk.
        syrk_aat_lower(src, ln, f0, f0 + len, acc);
        return;
    }

    let slab_len = inner * ln;
    let f1 = f0 + len;
    let mut f = f0;
    while f < f1 {
        let o = f / inner;
        let i0 = f - o * inner;
        let i1 = inner.min(i0 + (f1 - f));
        let slab = &src[o * slab_len..(o + 1) * slab_len];
        syrk_ata_lower(slab, inner, ln, i0, i1, acc);
        f += i1 - i0;
    }
}

/// [`accumulate_src_range`] over an arbitrary strided view, **bit-identical**
/// to running the canonical path on an extracted copy: the strided "mill"
/// kernels below replicate the per-element accumulation order of both the
/// packed triangle kernel (fresh partial per `KC` block of the fiber range,
/// flushed with one add) and the naive dot/axpy loops (eight-lane dot
/// structure, zero-skip rank-1 updates), and the packed/naive dispatch is
/// made on the same logical sizes.
fn accumulate_view_range(v: &TensorView, n: usize, f0: usize, len: usize, acc: &mut [f64]) {
    if len == 0 {
        return;
    }
    let dims = v.dims();
    let strides = v.strides();
    let ln = dims[n];
    let sn = strides[n];
    let data = v.data();
    let inner: usize = dims[..n].iter().product();

    if inner == 1 {
        // One global range, matching the single `syrk_aat_lower` call of the
        // canonical path (KC phase anchored at f0).
        let fibers = AxisSpan::over(dims, strides, |j| j != n);
        if pack::use_packed(ln, ln, len) {
            mill_gram_packed(data, fibers.offsets_from(f0), len, ln, sn, acc);
        } else {
            mill_gram_rank1(data, fibers.offsets_from(f0), len, ln, sn, acc);
        }
        return;
    }

    // Slab walk clipped to the fiber range, one `syrk_ata_lower` equivalent
    // per slab (KC phase anchored at each slab's range start, exactly like
    // the per-slab calls of the canonical path).
    let outer = AxisSpan::over(dims, strides, |j| j > n);
    let inner_span = AxisSpan::over(dims, strides, |j| j < n);
    let f1 = f0 + len;
    let mut f = f0;
    while f < f1 {
        let o = f / inner;
        let i0 = f - o * inner;
        let i1 = inner.min(i0 + (f1 - f));
        let sbase = outer.offset_at(o);
        let offs = inner_span.offsets_from(i0).map(|p| sbase + p);
        if pack::use_packed(ln, ln, i1 - i0) {
            mill_gram_packed(data, offs, i1 - i0, ln, sn, acc);
        } else {
            mill_gram_lanes(data, offs, i1 - i0, ln, sn, acc);
        }
        f += i1 - i0;
    }
}

thread_local! {
    /// Grow-only scratch for the strided Gram mills (`L_n` gathered fiber
    /// values plus either a `L_n × L_n` partial or the eight-lane dot state).
    /// Growth is counted as a tensor-buffer allocation, so the zero-alloc
    /// steady-state invariant extends to view paths.
    static MILL_SCRATCH: std::cell::Cell<Vec<f64>> = const { std::cell::Cell::new(Vec::new()) };
}

fn with_mill_scratch<R>(min_len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    MILL_SCRATCH.with(|cell| {
        let mut buf = cell.take();
        if buf.len() < min_len {
            if buf.capacity() < min_len {
                note_buffer_alloc();
            }
            buf.resize(min_len, 0.0);
        }
        // Hand out exactly `min_len`: the buffer is grow-only, and the mills
        // size their gather loops off the slice they receive — a stale wider
        // slice from an earlier, larger call would walk `data` out of bounds.
        let r = f(&mut buf[..min_len]);
        cell.set(buf);
        r
    })
}

/// Strided equivalent of the **packed** triangle kernel over one contraction
/// range: per lower-triangle element, a fresh partial sum per `KC` block of
/// positions (ascending within the block) is added to `acc` at each block
/// boundary — the exact per-element order of `pack::syrk_packed_lower`.
fn mill_gram_packed(
    data: &[f64],
    offs: impl Iterator<Item = usize>,
    count: usize,
    ln: usize,
    sn: usize,
    acc: &mut [f64],
) {
    with_mill_scratch(ln + ln * ln, |scratch| {
        let (vals, part) = scratch.split_at_mut(ln);
        part[..ln * ln].fill(0.0);
        let mut q = 0usize;
        for base in offs.take(count) {
            for (l, vv) in vals.iter_mut().enumerate() {
                *vv = data[base + l * sn];
            }
            for j in 0..ln {
                let vj = vals[j];
                for i in j..ln {
                    part[i + j * ln] += vals[i] * vj;
                }
            }
            q += 1;
            if q.is_multiple_of(pack::KC) {
                for j in 0..ln {
                    for i in j..ln {
                        acc[i + j * ln] += part[i + j * ln];
                        part[i + j * ln] = 0.0;
                    }
                }
            }
        }
        if !q.is_multiple_of(pack::KC) {
            for j in 0..ln {
                for i in j..ln {
                    acc[i + j * ln] += part[i + j * ln];
                }
            }
        }
    });
}

/// Strided equivalent of the naive `syrk_aat_lower` loop (mode-0 fibers):
/// one zero-skipping rank-1 update per fiber, straight into `acc`.
fn mill_gram_rank1(
    data: &[f64],
    offs: impl Iterator<Item = usize>,
    count: usize,
    ln: usize,
    sn: usize,
    acc: &mut [f64],
) {
    with_mill_scratch(ln, |vals| {
        for base in offs.take(count) {
            for (l, vv) in vals.iter_mut().enumerate() {
                *vv = data[base + l * sn];
            }
            for j in 0..ln {
                let vj = vals[j];
                if vj == 0.0 {
                    continue;
                }
                for i in j..ln {
                    acc[i + j * ln] += vj * vals[i];
                }
            }
        }
    });
}

/// Strided equivalent of the naive `syrk_ata_lower` loop (one slab range):
/// per lower-triangle pair, the eight-lane `unrolled_dot` structure — lane
/// `q % 8` for the unrolled body, sequential tail, identical final
/// reduction — streamed position-by-position so each strided fiber value is
/// gathered once.
fn mill_gram_lanes(
    data: &[f64],
    offs: impl Iterator<Item = usize>,
    count: usize,
    ln: usize,
    sn: usize,
    acc: &mut [f64],
) {
    let pairs = ln * (ln + 1) / 2;
    with_mill_scratch(ln + pairs * 9, |scratch| {
        let (vals, rest) = scratch.split_at_mut(ln);
        let (lanes, tails) = rest.split_at_mut(pairs * 8);
        lanes[..pairs * 8].fill(0.0);
        tails[..pairs].fill(0.0);
        let main = count - count % 8;
        for (q, base) in offs.take(count).enumerate() {
            for (l, vv) in vals.iter_mut().enumerate() {
                *vv = data[base + l * sn];
            }
            let mut p = 0usize;
            if q < main {
                let lane = q % 8;
                for l2 in 0..ln {
                    let v2 = vals[l2];
                    for &v1 in &vals[l2..ln] {
                        lanes[p * 8 + lane] += v1 * v2;
                        p += 1;
                    }
                }
            } else {
                for l2 in 0..ln {
                    let v2 = vals[l2];
                    for &v1 in &vals[l2..ln] {
                        tails[p] += v1 * v2;
                        p += 1;
                    }
                }
            }
        }
        let mut p = 0usize;
        for l2 in 0..ln {
            for l1 in l2..ln {
                let a = &lanes[p * 8..p * 8 + 8];
                acc[l1 + l2 * ln] +=
                    tails[p] + ((a[0] + a[4]) + (a[1] + a[5])) + ((a[2] + a[6]) + (a[3] + a[7]));
                p += 1;
            }
        }
    });
}

/// The Gram matrix `G = T(n) · T(n)ᵀ` (`L_n × L_n`), computed directly from
/// the canonical layout without materializing the unfolding.
///
/// Numerically equivalent to `syrk(&unfold(t, n))`; the fiber-parallel path
/// regroups the summation per worker, so results can differ by a few ulps.
/// Thread count is heuristic (sequential below a work threshold, one worker
/// per host core above it); execution backends that want explicit control
/// use [`gram_threads`] directly.
///
/// # Panics
/// Panics if `n` is not a valid mode.
pub fn gram(t: &DenseTensor, n: usize) -> Matrix {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let ln = shape.dim(n);
    let work = shape.num_fibers(n) * ln * (ln + 1) / 2;
    gram_threads(t, n, crate::threads::heuristic_threads(work, PAR_MIN_WORK))
}

/// [`gram`] with an **explicit** worker count: the mode-`n` fiber range is
/// split into `threads` contiguous sub-ranges, each accumulated by one
/// worker, merged by a pairwise tree reduction. `threads == 1` is the
/// strictly sequential kernel (no thread is ever spawned, summation order is
/// the canonical fiber order); the size heuristic of [`gram`] does not
/// apply. This is the par-ranged entry point the sweep-executor backends
/// build on (`SeqBackend` pins 1, `RayonBackend` pins the host core count).
///
/// # Panics
/// Panics if `n` is not a valid mode.
pub fn gram_threads(t: &DenseTensor, n: usize, threads: usize) -> Matrix {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let ln = shape.dim(n);
    let nf = shape.num_fibers(n);
    let src = t.as_slice();
    let dims = shape.dims();
    gram_ranges(ln, nf, threads, |f0, len, buf| {
        accumulate_src_range(src, dims, n, f0, len, buf)
    })
}

/// Shared split/reduce skeleton of [`gram_threads`] and
/// [`gram_view_threads`]: the fiber range is split into per-worker
/// contiguous sub-ranges handed to `accumulate`, then merged by a pairwise
/// tree reduction. Keeping one skeleton guarantees the dense and view entry
/// points produce bit-identical results at any worker count.
fn gram_ranges<F>(ln: usize, nf: usize, threads: usize, accumulate: F) -> Matrix
where
    F: Fn(usize, usize, &mut [f64]) + Sync,
{
    let m = ln * ln;
    let workers = threads.max(1).min(nf);
    if workers <= 1 {
        let mut g = Matrix::zeros(ln, ln);
        accumulate(0, nf, g.as_mut_slice());
        mirror_lower(g.as_mut_slice(), ln);
        return g;
    }

    // Per-worker accumulators over contiguous fiber ranges ...
    let per = nf.div_ceil(workers);
    let nchunks = nf.div_ceil(per);
    let mut acc = vec![0.0; nchunks * m];
    acc.par_chunks_mut(m).enumerate().for_each(|(w, buf)| {
        let f0 = w * per;
        let f1 = nf.min(f0 + per);
        accumulate(f0, f1 - f0, buf);
    });

    // ... merged by pairwise tree reduction into chunk 0.
    let mut width = nchunks;
    while width > 1 {
        let half = width.div_ceil(2);
        let (lo, hi) = acc.split_at_mut(half * m);
        for i in half..width {
            let src = &hi[(i - half) * m..(i - half + 1) * m];
            for (d, s) in lo[(i - half) * m..].iter_mut().zip(src) {
                *d += s;
            }
        }
        width = half;
    }
    acc.truncate(m);
    let mut g = Matrix::from_vec(ln, ln, acc);
    mirror_lower(g.as_mut_slice(), ln);
    g
}

/// Gram contribution of the contiguous unfolding-column range
/// `[c0, c0 + len)`: the `L_n × L_n` matrix `U · Uᵀ` where `U` is
/// `unfold(t, n)` restricted to those columns — computed in place from the
/// canonical layout, no column copy.
///
/// Summing [`gram_cols`] over any partition of `0..num_fibers(n)` yields
/// [`gram`]. An empty range (`len == 0`) returns the zero matrix, so callers
/// may hand trailing ranks empty shares.
///
/// Runs sequentially: the intended caller is one simulated MPI rank, which
/// is already a thread of its own.
///
/// # Panics
/// Panics if `n` is out of range or the column range exceeds the number of
/// mode-`n` fibers.
pub fn gram_cols(t: &DenseTensor, n: usize, c0: usize, len: usize) -> Matrix {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let nf = shape.num_fibers(n);
    assert!(
        c0 + len <= nf,
        "column range {c0}..{} exceeds {nf} mode-{n} fibers",
        c0 + len
    );
    let ln = shape.dim(n);
    let mut g = Matrix::zeros(ln, ln);
    accumulate_src_range(t.as_slice(), shape.dims(), n, c0, len, g.as_mut_slice());
    mirror_lower(g.as_mut_slice(), ln);
    g
}

/// Number of mode-`n` fibers of a view (product of the other extents);
/// `0` when any of them is empty.
fn view_num_fibers(v: &TensorView, n: usize) -> usize {
    v.dims()
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != n)
        .map(|(_, &d)| d)
        .product()
}

/// [`gram`] over an arbitrary strided [`TensorView`] — **no extraction, no
/// scratch tensor**. Contiguous views (including every full-tensor view)
/// take the canonical slab kernels on the underlying storage directly;
/// genuinely strided views run the mill kernels, which replicate the
/// canonical accumulation order element for element, so the result is
/// bit-identical to extracting the view into a fresh tensor and calling
/// [`gram_threads`] with the same worker count.
///
/// # Panics
/// Panics if `n` is not a valid mode of the view.
pub fn gram_view(v: &TensorView, n: usize) -> Matrix {
    assert!(n < v.order(), "mode {n} out of range for view");
    let ln = v.dim(n);
    let work = view_num_fibers(v, n) * ln * (ln + 1) / 2;
    gram_view_threads(v, n, crate::threads::heuristic_threads(work, PAR_MIN_WORK))
}

/// [`gram_view`] with an **explicit** worker count; the split/reduce
/// skeleton is shared with [`gram_threads`], so for equal data and worker
/// count the two agree to the bit.
///
/// # Panics
/// Panics if `n` is not a valid mode of the view.
pub fn gram_view_threads(v: &TensorView, n: usize, threads: usize) -> Matrix {
    assert!(n < v.order(), "mode {n} out of range for view");
    let ln = v.dim(n);
    let nf = view_num_fibers(v, n);
    if let Some(src) = v.contiguous_data() {
        let dims = v.dims();
        return gram_ranges(ln, nf, threads, |f0, len, buf| {
            accumulate_src_range(src, dims, n, f0, len, buf)
        });
    }
    gram_ranges(ln, nf, threads, |f0, len, buf| {
        accumulate_view_range(v, n, f0, len, buf)
    })
}

/// [`gram_cols`] over a strided view: Gram contribution of the contiguous
/// unfolding-column range `[c0, c0 + len)`, sequential, bit-identical to
/// extract-then-[`gram_cols`].
///
/// # Panics
/// Panics if `n` is out of range or the column range exceeds the view's
/// mode-`n` fiber count.
pub fn gram_view_cols(v: &TensorView, n: usize, c0: usize, len: usize) -> Matrix {
    assert!(n < v.order(), "mode {n} out of range for view");
    let nf = view_num_fibers(v, n);
    assert!(
        c0 + len <= nf,
        "column range {c0}..{} exceeds {nf} mode-{n} fibers",
        c0 + len
    );
    let ln = v.dim(n);
    let mut g = Matrix::zeros(ln, ln);
    if let Some(src) = v.contiguous_data() {
        accumulate_src_range(src, v.dims(), n, c0, len, g.as_mut_slice());
    } else {
        accumulate_view_range(v, n, c0, len, g.as_mut_slice());
    }
    mirror_lower(g.as_mut_slice(), ln);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use crate::unfold::unfold;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tucker_linalg::syrk;

    fn rand_tensor(dims: &[usize], seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        DenseTensor::random(Shape::new(dims.to_vec()), &dist, &mut rng)
    }

    #[test]
    fn matches_unfold_syrk_all_modes() {
        let t = rand_tensor(&[5, 4, 3, 6], 1);
        for n in 0..4 {
            let g = gram(&t, n);
            let r = syrk(&unfold(&t, n));
            assert_eq!(g.shape(), r.shape());
            assert!(g.max_abs_diff(&r) < 1e-12, "mode {n}");
        }
    }

    #[test]
    fn parallel_path_matches_reference() {
        // Big enough to clear PAR_MIN_WORK on any mode.
        let t = rand_tensor(&[24, 20, 18], 2);
        for n in 0..3 {
            let g = gram(&t, n);
            let r = syrk(&unfold(&t, n));
            assert!(g.max_abs_diff(&r) < 1e-11, "mode {n}");
        }
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let t = rand_tensor(&[10, 9, 8], 11);
        for n in 0..3 {
            let r = syrk(&unfold(&t, n));
            assert!(gram_threads(&t, n, 1).max_abs_diff(&r) < 1e-12, "mode {n}");
            for w in [2usize, 3, 5, 64] {
                let par = gram_threads(&t, n, w);
                assert!(par.max_abs_diff(&r) < 1e-11, "mode {n}, {w} workers");
            }
        }
    }

    #[test]
    fn view_full_tensor_is_bit_identical() {
        let t = rand_tensor(&[6, 5, 4], 21);
        let v = crate::view::TensorView::of(&t);
        for n in 0..3 {
            for w in [1usize, 3] {
                let g = gram_view_threads(&v, n, w);
                let r = gram_threads(&t, n, w);
                assert_eq!(g.max_abs_diff(&r), 0.0, "mode {n}, {w} workers");
            }
        }
    }

    #[test]
    fn view_region_matches_extract_bitwise() {
        use crate::subtensor::{extract, Region};
        let t = rand_tensor(&[7, 6, 5], 22);
        let r = Region {
            start: vec![1, 0, 2],
            len: vec![5, 4, 3],
        };
        let v = crate::view::TensorView::region(&t, &r);
        let c = DenseTensor::from_vec(r.shape(), extract(&t, &r));
        for n in 0..3 {
            let g = gram_view_threads(&v, n, 1);
            let gr = gram_threads(&c, n, 1);
            assert_eq!(g.max_abs_diff(&gr), 0.0, "mode {n}");
            let nf = c.shape().num_fibers(n);
            let gc = gram_view_cols(&v, n, 1, nf - 1);
            let gcr = gram_cols(&c, n, 1, nf - 1);
            assert_eq!(gc.max_abs_diff(&gcr), 0.0, "cols, mode {n}");
        }
    }

    #[test]
    fn strided_view_packed_mill_matches_extract_bitwise() {
        // Big enough that the per-range dispatch picks the packed kernel on
        // the dense side and the packed mill on the view side.
        use crate::subtensor::{extract, Region};
        let t = rand_tensor(&[24, 20, 18], 23);
        let r = Region {
            start: vec![2, 1, 3],
            len: vec![20, 17, 12],
        };
        let v = crate::view::TensorView::region(&t, &r);
        let c = DenseTensor::from_vec(r.shape(), extract(&t, &r));
        for n in 0..3 {
            for w in [1usize, 4] {
                let g = gram_view_threads(&v, n, w);
                let gr = gram_threads(&c, n, w);
                assert_eq!(g.max_abs_diff(&gr), 0.0, "mode {n}, {w} workers");
            }
        }
    }

    #[test]
    fn stepped_view_matches_copy_bitwise() {
        let t = rand_tensor(&[12, 10, 8], 24);
        let v = crate::view::TensorView::of(&t).step(0, 2).step(2, 3);
        let c = v.to_tensor();
        for n in 0..3 {
            let g = gram_view_threads(&v, n, 1);
            let gr = gram_threads(&c, n, 1);
            assert_eq!(g.max_abs_diff(&gr), 0.0, "mode {n}");
        }
    }

    #[test]
    fn gram_is_exactly_symmetric() {
        let t = rand_tensor(&[9, 8, 7], 3);
        for n in 0..3 {
            let g = gram(&t, n);
            for i in 0..t.shape().dim(n) {
                for j in 0..t.shape().dim(n) {
                    assert_eq!(g[(i, j)], g[(j, i)], "mode {n}");
                }
            }
        }
    }

    #[test]
    fn cols_partitions_sum_to_full() {
        let t = rand_tensor(&[4, 5, 6], 4);
        for n in 0..3 {
            let nf = t.shape().num_fibers(n);
            let full = gram(&t, n);
            for parts in [1usize, 2, 3, 7] {
                let per = nf.div_ceil(parts);
                let mut sum = Matrix::zeros(full.nrows(), full.ncols());
                let mut c0 = 0;
                for _ in 0..parts {
                    let len = per.min(nf - c0);
                    let part = gram_cols(&t, n, c0, len);
                    for (s, p) in sum.as_mut_slice().iter_mut().zip(part.as_slice()) {
                        *s += p;
                    }
                    c0 += len;
                }
                assert!(
                    sum.max_abs_diff(&full) < 1e-12,
                    "mode {n}, {parts} partitions"
                );
            }
        }
    }

    #[test]
    fn cols_slices_partial_slabs_correctly() {
        // A range that starts and ends mid-slab on a mode with inner > 1.
        let t = rand_tensor(&[3, 5, 4], 5);
        let u = unfold(&t, 1); // 5 x 12, inner = 3
        let (c0, len) = (2, 7);
        let g = gram_cols(&t, 1, c0, len);
        let mut r = Matrix::zeros(5, 5);
        for j in c0..c0 + len {
            let col = u.col(j);
            for l1 in 0..5 {
                for l2 in 0..5 {
                    r[(l1, l2)] += col[l1] * col[l2];
                }
            }
        }
        assert!(g.max_abs_diff(&r) < 1e-12);
    }

    #[test]
    fn empty_range_gives_zero_matrix() {
        let t = rand_tensor(&[4, 3], 6);
        let g = gram_cols(&t, 0, 3, 0);
        assert_eq!(g.shape(), (4, 4));
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_mode_tensor() {
        let t = rand_tensor(&[7], 7);
        let g = gram(&t, 0);
        let r = syrk(&unfold(&t, 0));
        assert!(g.max_abs_diff(&r) < 1e-13);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_mode_panics() {
        let t = rand_tensor(&[2, 2], 8);
        let _ = gram(&t, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overlong_column_range_panics() {
        let t = rand_tensor(&[2, 3], 9);
        let _ = gram_cols(&t, 0, 2, 2);
    }
}
