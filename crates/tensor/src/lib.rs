//! Dense N-dimensional tensor substrate for the distributed Tucker
//! decomposition workspace.
//!
//! The paper's vocabulary (§2.1) maps onto this crate as follows:
//!
//! * a tensor `T` of size `L₁ × … × L_N` is a [`DenseTensor`] with a
//!   [`Shape`];
//! * a **mode-n fiber** is a vector varying the `n`-th coordinate with all
//!   other coordinates fixed — see [`fiber`];
//! * the **mode-n unfolding** `T(n)` is the `L_n × (|T|/L_n)` matrix whose
//!   columns are the mode-n fibers in lexicographic order — see [`unfold`]
//!   (tests and the ablation baseline only; hot paths never materialize it);
//! * the **tensor-times-matrix product** `Z = T ×_n A` applies the linear map
//!   `A` to every mode-n fiber — see [`ttm`]. The kernel uses the blocking
//!   strategy of Austin et al. (paper §5) that avoids materializing the
//!   unfolding by decomposing the product into a batch of GEMM calls on
//!   contiguous slabs; [`ttm::ttm_into`] + [`ttm::TtmWorkspace`] reuse
//!   grow-only output buffers so iterative pipelines allocate nothing at
//!   steady state;
//! * the **Gram matrix** `T(n) · T(n)ᵀ` feeding the SVD step is computed by
//!   the fused slab-wise kernel in [`gram`] (with a column-range variant for
//!   the distributed 1/qₙ shares) — again without materializing `T(n)`;
//! * **TTM-chains** (`×_{n₁} A₁ ×_{n₂} A₂ …`, commutative) — see
//!   [`ttm::ttm_chain`].
//!
//! Storage is the canonical layout generalizing column-major matrices: the
//! first mode varies fastest. All index math lives in [`shape`] so that the
//! distributed crate can reuse it for block arithmetic.

pub mod dense;
pub mod fiber;
pub mod gram;
pub mod norm;
pub mod shape;
pub mod subtensor;
pub mod threads;
pub mod ttm;
pub mod unfold;
pub mod view;

pub use dense::{tensor_buffer_allocs, DenseTensor};
pub use gram::{gram, gram_cols, gram_threads, gram_view, gram_view_cols, gram_view_threads};
pub use shape::Shape;
pub use threads::{heuristic_threads, host_threads, set_host_threads_override};
pub use ttm::{
    ttm, ttm_chain, ttm_into, ttm_into_threads, ttm_view, ttm_view_into, ttm_view_into_threads,
    TtmWorkspace,
};
pub use unfold::{fold, unfold};
pub use view::{copy_into, view_bytes_copied, TensorView, TensorViewMut};
