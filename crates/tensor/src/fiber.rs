//! Mode-`n` fiber access.
//!
//! A mode-`n` fiber is the vector obtained by varying the `n`-th coordinate
//! while holding all others fixed (paper §2.1). Fibers are enumerated in the
//! same lexicographic order the unfolding uses for its columns, so
//! `fiber(t, n, c)` equals column `c` of `unfold(t, n)`.

use crate::dense::DenseTensor;

/// Copy the `c`-th mode-`n` fiber into a fresh vector.
///
/// # Panics
/// Panics if `n` or `c` is out of range.
pub fn fiber(t: &DenseTensor, n: usize, c: usize) -> Vec<f64> {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range");
    let inner = shape.inner_extent(n);
    let ln = shape.dim(n);
    assert!(c < shape.num_fibers(n), "fiber index {c} out of range");
    let i = c % inner;
    let o = c / inner;
    let base = o * inner * ln + i;
    let src = t.as_slice();
    (0..ln).map(|l| src[base + l * inner]).collect()
}

/// Iterate over all `(fiber_index, fiber)` pairs of mode `n`.
pub fn fibers(t: &DenseTensor, n: usize) -> impl Iterator<Item = (usize, Vec<f64>)> + '_ {
    let count = t.shape().num_fibers(n);
    (0..count).map(move |c| (c, fiber(t, n, c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::unfold;

    #[test]
    fn fibers_match_unfolding_columns() {
        let t = DenseTensor::from_fn([3, 2, 4], |c| (c[0] * 100 + c[1] * 10 + c[2]) as f64);
        for n in 0..3 {
            let u = unfold(&t, n);
            for (c, f) in fibers(&t, n) {
                assert_eq!(f.as_slice(), u.col(c), "mode {n} fiber {c}");
            }
        }
    }

    #[test]
    fn fiber_count() {
        let t = DenseTensor::zeros([3, 4, 5]);
        assert_eq!(fibers(&t, 0).count(), 20);
        assert_eq!(fibers(&t, 1).count(), 15);
        assert_eq!(fibers(&t, 2).count(), 12);
    }

    #[test]
    fn matrix_fibers_are_rows_and_cols() {
        // For a matrix: mode-0 fibers are columns, mode-1 fibers are rows.
        let t = DenseTensor::from_fn([2, 3], |c| (c[0] * 10 + c[1]) as f64);
        assert_eq!(fiber(&t, 0, 1), vec![1.0, 11.0]); // column 1
        assert_eq!(fiber(&t, 1, 1), vec![10.0, 11.0, 12.0]); // row 1
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_fiber_index_panics() {
        let t = DenseTensor::zeros([2, 2]);
        let _ = fiber(&t, 0, 2);
    }
}
