//! Host thread-count heuristic, shared by every kernel in the workspace.
//!
//! The Gram and TTM kernels (and the sweep-executor's `auto_threads`) all
//! used to call `std::thread::available_parallelism()` inline, each with its
//! own copy of the "go sequential below a work threshold" guard. The copies
//! had drifted in their thresholds and none of them could be pinned from a
//! test. This module is the single replacement:
//!
//! * [`host_threads`] — the host's worker count, overridable process-wide via
//!   [`set_host_threads_override`] so tests (and the serving bench) can pin a
//!   deterministic count regardless of the machine they run on;
//! * [`heuristic_threads`] — the shared guard: `1` below the caller's
//!   per-kernel work threshold, [`host_threads`] at or above it.
//!
//! Per-kernel thresholds stay with their kernels (`PAR_MIN_WORK` differs
//! between Gram and TTM on purpose — the dedup is of the parallelism lookup,
//! not of the cost models).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide override; `0` means "not set, ask the OS".
static HOST_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin (or unpin, with `None`) the worker count reported by
/// [`host_threads`]. Process-wide and racy-by-design: intended for test
/// setup and bench harnesses, not for concurrent reconfiguration.
pub fn set_host_threads_override(threads: Option<usize>) {
    HOST_THREADS_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count heuristic kernels use when no explicit count is given:
/// the override if one is pinned, else `available_parallelism()`, else 1.
pub fn host_threads() -> usize {
    match HOST_THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|w| w.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Shared sequential-below-threshold guard: `1` when `work < min_work`,
/// [`host_threads`] otherwise.
pub fn heuristic_threads(work: usize, min_work: usize) -> usize {
    if work < min_work {
        1
    } else {
        host_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the override is process-wide state and the
    // harness runs tests concurrently.
    #[test]
    fn override_and_threshold_guard() {
        set_host_threads_override(Some(3));
        assert_eq!(host_threads(), 3);
        assert_eq!(heuristic_threads(usize::MAX, 1), 3);
        set_host_threads_override(Some(7));
        assert_eq!(heuristic_threads(1, 1), 7);
        assert_eq!(heuristic_threads(99, 100), 1);
        assert_eq!(heuristic_threads(100, 100), 7);
        set_host_threads_override(None);
        assert!(host_threads() >= 1);
    }
}
