//! Shape and stride algebra for dense tensors.
//!
//! The canonical layout generalizes column-major matrices: **mode 0 varies
//! fastest**. For a shape `(L₀, L₁, …, L_{N−1})` the stride of mode `n` is
//! `∏_{j<n} L_j`, and the linear offset of coordinate `(l₀, …, l_{N−1})` is
//! `Σ_n l_n · stride_n`.

use std::fmt;

/// The dimensions of an `N`-dimensional tensor.
///
/// Modes are indexed `0..N` internally (the paper uses `1..N`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Create a shape from mode lengths.
    ///
    /// # Panics
    /// Panics if any length is zero — empty modes are not meaningful for the
    /// Tucker algorithms and would break block-distribution arithmetic.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        let dims = dims.into();
        assert!(!dims.is_empty(), "tensor must have at least one mode");
        assert!(dims.iter().all(|&d| d > 0), "zero-length mode in {dims:?}");
        Shape(dims)
    }

    /// Number of modes `N`.
    #[inline]
    pub fn order(&self) -> usize {
        self.0.len()
    }

    /// Length along mode `n`.
    #[inline]
    pub fn dim(&self, n: usize) -> usize {
        self.0[n]
    }

    /// All mode lengths.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements `|T| = ∏ L_n`.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.0.iter().product()
    }

    /// Cardinality as `f64` (for cost models that may overflow `usize` on
    /// paper-scale metadata).
    pub fn cardinality_f64(&self) -> f64 {
        self.0.iter().map(|&d| d as f64).product()
    }

    /// Stride of mode `n` in the canonical (mode-0-fastest) layout.
    #[inline]
    pub fn stride(&self, n: usize) -> usize {
        self.0[..n].iter().product()
    }

    /// All strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = Vec::with_capacity(self.order());
        let mut acc = 1;
        for &d in &self.0 {
            s.push(acc);
            acc *= d;
        }
        s
    }

    /// Linear offset of a coordinate vector.
    ///
    /// # Panics
    /// Debug-panics if the coordinate is out of bounds or has wrong arity.
    #[inline]
    pub fn offset(&self, coord: &[usize]) -> usize {
        debug_assert_eq!(coord.len(), self.order(), "coordinate arity mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (c, d) in coord.iter().zip(&self.0) {
            debug_assert!(c < d, "coordinate {coord:?} out of bounds for {self:?}");
            off += c * stride;
            stride *= d;
        }
        off
    }

    /// Inverse of [`Shape::offset`]: the coordinate of a linear index.
    pub fn coord(&self, mut index: usize) -> Vec<usize> {
        debug_assert!(index < self.cardinality());
        let mut c = Vec::with_capacity(self.order());
        for &d in &self.0 {
            c.push(index % d);
            index /= d;
        }
        c
    }

    /// The shape after replacing mode `n`'s length with `len`.
    pub fn with_dim(&self, n: usize, len: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[n] = len;
        Shape::new(dims)
    }

    /// Number of mode-`n` fibers, `|T| / L_n`.
    #[inline]
    pub fn num_fibers(&self, n: usize) -> usize {
        self.cardinality() / self.0[n]
    }

    /// Product of the lengths of modes strictly before `n` (the "inner" slab
    /// extent for the blocked TTM kernel).
    #[inline]
    pub fn inner_extent(&self, n: usize) -> usize {
        self.0[..n].iter().product()
    }

    /// Product of the lengths of modes strictly after `n` (the "outer" slab
    /// count for the blocked TTM kernel).
    #[inline]
    pub fn outer_extent(&self, n: usize) -> usize {
        self.0[n + 1..].iter().product()
    }

    /// Iterate over all coordinates in layout (mode-0-fastest) order.
    pub fn coords(&self) -> CoordIter {
        CoordIter {
            shape: self.0.clone(),
            next: Some(vec![0; self.order()]),
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl<const K: usize> From<[usize; K]> for Shape {
    fn from(dims: [usize; K]) -> Self {
        Shape::new(dims.to_vec())
    }
}

/// Iterator over all coordinates of a shape in canonical order.
pub struct CoordIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl Iterator for CoordIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        // Compute successor: increment mode 0 first (layout order).
        let mut succ = current.clone();
        let mut carry = true;
        for (c, &d) in succ.iter_mut().zip(&self.shape) {
            if !carry {
                break;
            }
            *c += 1;
            if *c == d {
                *c = 0;
            } else {
                carry = false;
            }
        }
        if !carry {
            self.next = Some(succ);
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Shape::from([3, 4, 5]);
        assert_eq!(s.order(), 3);
        assert_eq!(s.dim(1), 4);
        assert_eq!(s.cardinality(), 60);
        assert_eq!(s.num_fibers(1), 15);
    }

    #[test]
    fn strides_are_mode0_fastest() {
        let s = Shape::from([3, 4, 5]);
        assert_eq!(s.strides(), vec![1, 3, 12]);
        assert_eq!(s.stride(2), 12);
    }

    #[test]
    fn offset_coord_roundtrip() {
        let s = Shape::from([2, 3, 4]);
        for i in 0..s.cardinality() {
            let c = s.coord(i);
            assert_eq!(s.offset(&c), i);
        }
    }

    #[test]
    fn offset_formula() {
        let s = Shape::from([3, 4, 5]);
        assert_eq!(s.offset(&[1, 2, 3]), 1 + 2 * 3 + 3 * 12);
    }

    #[test]
    fn inner_outer_extents() {
        let s = Shape::from([3, 4, 5, 6]);
        assert_eq!(s.inner_extent(0), 1);
        assert_eq!(s.inner_extent(2), 12);
        assert_eq!(s.outer_extent(2), 6);
        assert_eq!(s.outer_extent(3), 1);
        for n in 0..4 {
            assert_eq!(
                s.inner_extent(n) * s.dim(n) * s.outer_extent(n),
                s.cardinality()
            );
        }
    }

    #[test]
    fn with_dim_replaces_one_mode() {
        let s = Shape::from([3, 4, 5]);
        let t = s.with_dim(1, 9);
        assert_eq!(t.dims(), &[3, 9, 5]);
        assert_eq!(s.dims(), &[3, 4, 5], "original untouched");
    }

    #[test]
    fn coords_iterate_in_layout_order() {
        let s = Shape::from([2, 3]);
        let all: Vec<Vec<usize>> = s.coords().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![1, 0]); // mode 0 fastest
        assert_eq!(all[2], vec![0, 1]);
        assert_eq!(all[5], vec![1, 2]);
        for (i, c) in all.iter().enumerate() {
            assert_eq!(s.offset(c), i, "coords order must match linear order");
        }
    }

    #[test]
    #[should_panic(expected = "zero-length mode")]
    fn zero_dim_rejected() {
        let _ = Shape::from([3, 0, 5]);
    }

    #[test]
    fn single_mode_shape() {
        let s = Shape::from([7]);
        assert_eq!(s.order(), 1);
        assert_eq!(s.num_fibers(0), 1);
        assert_eq!(s.coords().count(), 7);
    }

    #[test]
    fn cardinality_f64_handles_paper_scale() {
        // 2000^10 overflows u64; f64 path must not.
        let s = Shape::new(vec![2000; 10]);
        let c = s.cardinality_f64();
        assert!(c > 1e32 && c.is_finite());
    }
}
