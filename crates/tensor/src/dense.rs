//! Dense tensor storage.
//!
//! In debug builds this module also maintains a **tensor-buffer allocation
//! counter** (thread-local, see [`tensor_buffer_allocs`]): every fresh
//! tensor-sized buffer — a constructor allocation, a [`Clone`], or a pooled
//! buffer outgrowing its capacity in `ttm_into` — bumps it. The counter backs
//! the allocation-regression smoke test asserting that a steady-state HOOI
//! iteration (fused Gram + workspace TTM) performs zero tensor-buffer
//! allocations. Release builds compile the counter out entirely.

use crate::shape::Shape;
use rand::distributions::Distribution;
use rand::Rng;

#[cfg(debug_assertions)]
thread_local! {
    static BUFFER_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of tensor-buffer allocations observed **on the calling thread** so
/// far (debug builds only; always 0 in release builds, where the counter is
/// compiled out). Take a snapshot before and after a region to assert it is
/// allocation-free.
///
/// The counter is deliberately thread-local rather than process-wide: a
/// global atomic would let every concurrently running test bleed into the
/// snapshot window and make the allocation-regression tests flaky. The
/// trade-off is a blind spot for allocations made on rayon worker threads —
/// which the kernels never do by design: parallel closures only receive
/// `&mut [f64]` chunks of pre-sized buffers. Keep it that way; a tensor
/// constructed inside a `par_chunks_mut` closure would escape this counter.
pub fn tensor_buffer_allocs() -> u64 {
    #[cfg(debug_assertions)]
    {
        BUFFER_ALLOCS.with(|c| c.get())
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// Record one tensor-buffer allocation (no-op in release builds).
#[inline]
pub(crate) fn note_buffer_alloc() {
    #[cfg(debug_assertions)]
    BUFFER_ALLOCS.with(|c| c.set(c.get() + 1));
}

/// A dense `f64` tensor in the canonical mode-0-fastest layout.
#[derive(PartialEq)]
pub struct DenseTensor {
    shape: Shape,
    data: Vec<f64>,
}

impl Clone for DenseTensor {
    fn clone(&self) -> Self {
        note_buffer_alloc();
        Self {
            shape: self.shape.clone(),
            data: self.data.clone(),
        }
    }
}

impl DenseTensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        note_buffer_alloc();
        let data = vec![0.0; shape.cardinality()];
        Self { shape, data }
    }

    /// Tensor built from a closure over coordinates.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let shape = shape.into();
        note_buffer_alloc();
        let mut data = Vec::with_capacity(shape.cardinality());
        for c in shape.coords() {
            data.push(f(&c));
        }
        Self { shape, data }
    }

    /// Wrap an existing canonical-layout buffer.
    ///
    /// Does not bump the allocation counter: the buffer may be a recycled
    /// workspace buffer (the caller that created it fresh already counted it).
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape cardinality.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f64>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.cardinality(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// Tensor filled with samples from `dist`.
    pub fn random<D: Distribution<f64>, R: Rng>(
        shape: impl Into<Shape>,
        dist: &D,
        rng: &mut R,
    ) -> Self {
        let shape = shape.into();
        note_buffer_alloc();
        let data = (0..shape.cardinality()).map(|_| dist.sample(rng)).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of elements.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.data.len()
    }

    /// Canonical-layout backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at a coordinate.
    #[inline]
    pub fn get(&self, coord: &[usize]) -> f64 {
        self.data[self.shape.offset(coord)]
    }

    /// Set element at a coordinate.
    #[inline]
    pub fn set(&mut self, coord: &[usize], value: f64) {
        let off = self.shape.offset(coord);
        self.data[off] = value;
    }

    /// Maximum absolute elementwise difference to another tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseTensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Elementwise sum with another tensor, in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &DenseTensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }
}

impl std::fmt::Debug for DenseTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DenseTensor({}, {} elements)",
            self.shape,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get_set() {
        let mut t = DenseTensor::zeros([2, 3, 4]);
        assert_eq!(t.cardinality(), 24);
        t.set(&[1, 2, 3], 5.0);
        assert_eq!(t.get(&[1, 2, 3]), 5.0);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn from_fn_coordinates() {
        let t = DenseTensor::from_fn([3, 4], |c| (c[0] * 10 + c[1]) as f64);
        assert_eq!(t.get(&[2, 3]), 23.0);
        // Layout: mode 0 fastest.
        assert_eq!(t.as_slice()[0], 0.0);
        assert_eq!(t.as_slice()[1], 10.0);
        assert_eq!(t.as_slice()[3], 1.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let v: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let t = DenseTensor::from_vec([3, 4], v.clone());
        assert_eq!(t.into_vec(), v);
    }

    #[test]
    fn add_and_scale() {
        let a = DenseTensor::from_fn([2, 2], |c| c[0] as f64);
        let mut b = a.clone();
        b.add_assign(&a);
        b.scale(0.5);
        assert_eq!(b.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_checked() {
        let _ = DenseTensor::from_vec([2, 2], vec![0.0; 5]);
    }

    #[test]
    fn alloc_counter_tracks_fresh_buffers_only() {
        if !cfg!(debug_assertions) {
            return; // counter compiled out in release builds
        }
        let t0 = tensor_buffer_allocs();
        let t = DenseTensor::zeros([3, 3]);
        let _c = t.clone();
        assert_eq!(tensor_buffer_allocs() - t0, 2, "zeros + clone count");
        let t1 = tensor_buffer_allocs();
        let _w = DenseTensor::from_vec([3, 3], t.clone().into_vec()); // clone counts,
        assert_eq!(tensor_buffer_allocs() - t1, 1, "from_vec wrap does not");
    }
}
