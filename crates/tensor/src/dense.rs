//! Dense tensor storage.

use crate::shape::Shape;
use rand::distributions::Distribution;
use rand::Rng;

/// A dense `f64` tensor in the canonical mode-0-fastest layout.
#[derive(Clone, PartialEq)]
pub struct DenseTensor {
    shape: Shape,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.cardinality()];
        Self { shape, data }
    }

    /// Tensor built from a closure over coordinates.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let shape = shape.into();
        let mut data = Vec::with_capacity(shape.cardinality());
        for c in shape.coords() {
            data.push(f(&c));
        }
        Self { shape, data }
    }

    /// Wrap an existing canonical-layout buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape cardinality.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f64>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.cardinality(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// Tensor filled with samples from `dist`.
    pub fn random<D: Distribution<f64>, R: Rng>(
        shape: impl Into<Shape>,
        dist: &D,
        rng: &mut R,
    ) -> Self {
        let shape = shape.into();
        let data = (0..shape.cardinality()).map(|_| dist.sample(rng)).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of elements.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.data.len()
    }

    /// Canonical-layout backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at a coordinate.
    #[inline]
    pub fn get(&self, coord: &[usize]) -> f64 {
        self.data[self.shape.offset(coord)]
    }

    /// Set element at a coordinate.
    #[inline]
    pub fn set(&mut self, coord: &[usize], value: f64) {
        let off = self.shape.offset(coord);
        self.data[off] = value;
    }

    /// Maximum absolute elementwise difference to another tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseTensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Elementwise sum with another tensor, in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &DenseTensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }
}

impl std::fmt::Debug for DenseTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DenseTensor({}, {} elements)",
            self.shape,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get_set() {
        let mut t = DenseTensor::zeros([2, 3, 4]);
        assert_eq!(t.cardinality(), 24);
        t.set(&[1, 2, 3], 5.0);
        assert_eq!(t.get(&[1, 2, 3]), 5.0);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn from_fn_coordinates() {
        let t = DenseTensor::from_fn([3, 4], |c| (c[0] * 10 + c[1]) as f64);
        assert_eq!(t.get(&[2, 3]), 23.0);
        // Layout: mode 0 fastest.
        assert_eq!(t.as_slice()[0], 0.0);
        assert_eq!(t.as_slice()[1], 10.0);
        assert_eq!(t.as_slice()[3], 1.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let v: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let t = DenseTensor::from_vec([3, 4], v.clone());
        assert_eq!(t.into_vec(), v);
    }

    #[test]
    fn add_and_scale() {
        let a = DenseTensor::from_fn([2, 2], |c| c[0] as f64);
        let mut b = a.clone();
        b.add_assign(&a);
        b.scale(0.5);
        assert_eq!(b.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_checked() {
        let _ = DenseTensor::from_vec([2, 2], vec![0.0; 5]);
    }
}
