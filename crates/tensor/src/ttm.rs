//! Tensor-times-matrix (TTM) products.
//!
//! `Z = T ×_n A` applies the `K × L_n` matrix `A` to every mode-`n` fiber of
//! `T`; the result has the mode-`n` length replaced by `K` (paper §2.1).
//!
//! The kernel follows the blocking strategy of Austin et al. (paper §5): the
//! canonical layout factors the tensor into `outer = ∏_{j>n} L_j` contiguous
//! slabs, each an `inner × L_n` column-major matrix with
//! `inner = ∏_{j<n} L_j`. The TTM is then a batch of plain GEMMs
//! `Out_o = In_o · Aᵀ` on those slabs — **no unfolding is ever
//! materialized**. Slabs are independent, so the batch is rayon-parallel.
//!
//! Above the packing threshold the slab GEMMs run on the packed
//! micro-kernels of `tucker_linalg::pack`, and this is where packing
//! amortizes best: the factor operand `Aᵀ` is **packed once per TTM call**
//! (`pack_b_full`) and the same pack is streamed by every outer slab and
//! every worker; only the slab operand is packed per block. Mode 0
//! (`inner == 1`) collapses to a single column-partitioned GEMM
//! `Out = A · Src`. Pack buffers are pooled: [`TtmWorkspace`] owns a
//! [`PackPair`] whose growth is counted by the debug allocation counter
//! exactly like tensor buffers, so steady-state sweeps stay allocation-free
//! pack buffers included; the free functions stage through a thread-local
//! pair. Below the threshold (or under `KernelMode::Naive`) the original
//! unrolled dot/axpy slab loops run unchanged.
//!
//! The workhorse entry point is [`ttm_into`], which writes into a
//! caller-provided grow-only buffer; [`TtmWorkspace`] pools such buffers so
//! TTM chains ping-pong between two reused buffers (trees cycle through a
//! small pool, one live buffer per depth level) and steady-state HOOI /
//! STHOSVD iterations perform **zero tensor-sized allocations**. The classic
//! allocating [`ttm`] survives as a thin wrapper over [`ttm_into`].
//!
//! [`ttm_explicit_unfold`] is the naive reference (materialize `T(n)`,
//! multiply, fold back); together with `unfold`/`fold` themselves it exists
//! only for tests and the baseline arm of the kernel-ablation bench — the
//! invariant that no hot path materializes an unfolding is enforced by the
//! allocation-regression smoke test in `tucker-core`.

use crate::dense::{note_buffer_alloc, DenseTensor};
use crate::shape::Shape;
use crate::unfold::{fold, unfold};
use crate::view::{AxisSpan, TensorView};
use rayon::prelude::*;
use tucker_linalg::pack::{self, PackBuf, PackPair};
use tucker_linalg::{gemm, unrolled_dot_strided, Matrix, Transpose};

/// Minimum per-slab work before the slab loop goes parallel.
const PAR_MIN_WORK: usize = 1 << 14;

/// Smallest `inner` extent for which the packed path runs one GEMM **per
/// slab**: below this a single slab is too skinny for `MR`-row register
/// tiles, so the packed path instead gathers groups of consecutive slabs
/// into one `(g·inner) × L_n` staging matrix (see
/// [`ttm_packed_small_inner_run`]) and full tiles are restored.
const PACK_MIN_INNER: usize = 16;

/// `Z = T ×_n A` with `A` of shape `K × L_n`.
///
/// Thin allocating wrapper over [`ttm_into`]; hot loops should hold a
/// [`TtmWorkspace`] and reuse buffers instead.
///
/// # Panics
/// Panics if `n` is out of range or `A.ncols() != L_n`.
pub fn ttm(t: &DenseTensor, n: usize, a: &Matrix) -> DenseTensor {
    let mut out = Vec::new();
    let shape = ttm_into(t, n, a, &mut out);
    DenseTensor::from_vec(shape, out)
}

/// `Z = T ×_n A` written into `out`, returning `Z`'s shape.
///
/// `out` is cleared and resized to the output cardinality; its capacity is
/// grow-only, so reusing the same buffer across calls allocates only until
/// the largest output has been seen (each capacity growth is counted as one
/// tensor-buffer allocation, see
/// [`tensor_buffer_allocs`](crate::dense::tensor_buffer_allocs)).
///
/// Thread count is heuristic (sequential below a work threshold, one worker
/// per host core above it); execution backends that want explicit control
/// use [`ttm_into_threads`] directly.
///
/// # Panics
/// Panics if `n` is out of range or `A.ncols() != L_n`.
pub fn ttm_into(t: &DenseTensor, n: usize, a: &Matrix, out: &mut Vec<f64>) -> Shape {
    ttm_into_threads(t, n, a, out, auto_threads(t, n, a))
}

/// The heuristic worker count [`ttm_into`] (and the workspace's auto entry
/// points) use: sequential below the per-slab work threshold or when there
/// is a single slab, one worker per host core otherwise.
fn auto_threads(t: &DenseTensor, n: usize, a: &Matrix) -> usize {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let inner = shape.inner_extent(n);
    let outer = shape.outer_extent(n);
    let work = inner * shape.dim(n) * a.nrows();
    if outer > 1 {
        crate::threads::heuristic_threads(work, PAR_MIN_WORK)
    } else {
        1
    }
}

/// [`ttm_into`] with an **explicit** worker count: the `outer` slab range is
/// split into `threads` contiguous runs, one worker per run. `threads == 1`
/// runs the slab loop strictly sequentially (no thread is ever spawned);
/// the size heuristic of [`ttm_into`] does not apply. This is the
/// par-ranged entry point the sweep-executor backends build on
/// (`SeqBackend` pins 1, `RayonBackend` pins the host core count).
///
/// # Panics
/// Panics if `n` is out of range or `A.ncols() != L_n`.
pub fn ttm_into_threads(
    t: &DenseTensor,
    n: usize,
    a: &Matrix,
    out: &mut Vec<f64>,
    threads: usize,
) -> Shape {
    pack::with_thread_packs(|packs| ttm_into_impl(t, n, a, out, threads, packs))
}

/// The shared TTM body behind every entry point. `packs` is the pack-buffer
/// pair the packed path stages through — the workspace passes its pooled
/// pair, the free functions a thread-local one; pack identity never affects
/// the arithmetic, so workspace and fresh paths stay bit-identical.
fn ttm_into_impl(
    t: &DenseTensor,
    n: usize,
    a: &Matrix,
    out: &mut Vec<f64>,
    threads: usize,
    packs: &mut PackPair,
) -> Shape {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let ln = shape.dim(n);
    let k = a.nrows();
    assert_eq!(
        a.ncols(),
        ln,
        "TTM mode-{n} operand must have {ln} columns, got {}",
        a.ncols()
    );

    let out_shape = shape.with_dim(n, k);
    if out.capacity() < out_shape.cardinality() {
        note_buffer_alloc();
    }
    out.clear();
    out.resize(out_shape.cardinality(), 0.0);
    ttm_src_body(t.as_slice(), shape.dims(), n, a, out, threads, packs);
    out_shape
}

/// The canonical-layout TTM body on raw storage: `src`/`dims` describe a
/// tensor in canonical layout (a tensor's buffer, or a contiguous view's
/// window), `out` is already zeroed to the output cardinality. Shared by the
/// dense entry points and the contiguous fast path of the view entry points.
fn ttm_src_body(
    src: &[f64],
    dims: &[usize],
    n: usize,
    a: &Matrix,
    out: &mut [f64],
    threads: usize,
    packs: &mut PackPair,
) {
    let ln = dims[n];
    let k = a.nrows();
    let inner: usize = dims[..n].iter().product();
    let outer: usize = dims[n + 1..].iter().product();
    let a_buf = a.as_slice(); // column-major K x Ln: A[k,l] = a_buf[k + l*K]

    let in_slab = inner * ln;
    let out_slab = inner * k;

    // One-shot runtime pick for the whole call: the packed micro-kernel path
    // once total work amortizes packing. Every `inner` extent is eligible —
    // mode 0 collapses to a single GEMM, wide slabs run one GEMM each, and
    // small-inner shapes go through the slab-grouped staging path.
    if pack::use_packed(inner.saturating_mul(outer), k, ln) {
        ttm_packed(src, a_buf, inner, ln, k, outer, out, threads, packs);
        return;
    }

    // inner == 1 (mode 0): each slab is one contiguous fiber and each output
    // element is a plain dot product against a row of A. Transpose A once
    // (Aᵀ's columns are A's rows, contiguous) so the dots run over
    // contiguous memory with the unrolled kernel.
    let a_rows: Option<Matrix> = (inner == 1).then(|| a.transpose());

    let do_slab = |(o, dst): (usize, &mut [f64])| {
        let s = &src[o * in_slab..(o + 1) * in_slab];
        if let Some(at) = &a_rows {
            // dst[kk] = <A[kk, :], fiber>; dst is freshly zeroed, write once.
            for (d, row) in dst.iter_mut().zip(at.as_slice().chunks_exact(ln)) {
                *d = tucker_linalg::unrolled_dot(row, s);
            }
        } else if inner >= 16 {
            // Out_o(:, kk) += A[kk, l] * In_o(:, l) — long axpys over `inner`.
            for l in 0..ln {
                let sl = &s[l * inner..(l + 1) * inner];
                let acol = &a_buf[l * k..(l + 1) * k];
                for (kk, &alk) in acol.iter().enumerate() {
                    if alk == 0.0 {
                        continue;
                    }
                    let dcol = &mut dst[kk * inner..(kk + 1) * inner];
                    for (d, v) in dcol.iter_mut().zip(sl) {
                        *d += alk * v;
                    }
                }
            }
        } else {
            // Small inner (1 < inner < 16), below the packing threshold or
            // forced naive: iterate the `inner` interleaved fibers and do
            // axpys over K using A's contiguous columns.
            for i in 0..inner {
                for l in 0..ln {
                    let x = s[i + l * inner];
                    if x == 0.0 {
                        continue;
                    }
                    let acol = &a_buf[l * k..(l + 1) * k];
                    for (kk, &alk) in acol.iter().enumerate() {
                        dst[i + kk * inner] += alk * x;
                    }
                }
            }
        }
    };

    let workers = threads.max(1).min(outer.max(1));
    if workers > 1 {
        // Group slabs into `workers` contiguous runs so the partition is
        // explicit (one worker per run) rather than left to the pool.
        let per = outer.div_ceil(workers);
        out.par_chunks_mut(out_slab * per)
            .enumerate()
            .for_each(|(w, run)| {
                for (i, dst) in run.chunks_mut(out_slab).enumerate() {
                    do_slab((w * per + i, dst));
                }
            });
    } else {
        out.chunks_mut(out_slab).enumerate().for_each(do_slab);
    }
}

/// `Z = V ×_n A` over an arbitrary strided [`TensorView`] — **no
/// extraction, no scratch tensor**. Thin allocating wrapper over
/// [`ttm_view_into`].
///
/// # Panics
/// Panics if `n` is out of range, `A.ncols()` does not match the view's
/// mode-`n` extent, or the view is empty (the output shape would have a
/// zero-length mode).
pub fn ttm_view(v: &TensorView, n: usize, a: &Matrix) -> DenseTensor {
    let mut out = Vec::new();
    let shape = ttm_view_into(v, n, a, &mut out);
    DenseTensor::from_vec(shape, out)
}

/// [`ttm_into`] over a strided view, heuristic worker count (workers only
/// engage on the contiguous fast path; genuinely strided views run
/// sequentially, where the result is worker-count-invariant anyway).
///
/// # Panics
/// See [`ttm_view`].
pub fn ttm_view_into(v: &TensorView, n: usize, a: &Matrix, out: &mut Vec<f64>) -> Shape {
    assert!(n < v.order(), "mode {n} out of range for view");
    let dims = v.dims();
    let inner: usize = dims[..n].iter().product();
    let outer: usize = dims[n + 1..].iter().product();
    let work = inner * dims[n] * a.nrows();
    let threads = if outer > 1 {
        crate::threads::heuristic_threads(work, PAR_MIN_WORK)
    } else {
        1
    };
    ttm_view_into_threads(v, n, a, out, threads)
}

/// [`ttm_into_threads`] over a strided view. Contiguous views (including
/// every full-tensor view) run the canonical slab kernels on the underlying
/// storage directly — same speed, same bits, workers honored. Genuinely
/// strided views run a sequential run-decomposition: the non-contracted
/// index space is decomposed into maximal constant-stride runs, each fed to
/// the packed micro-kernels (or the naive loops below the packing
/// threshold) as a strided operand. Per-element accumulation order depends
/// only on the `KC` blocking of the contracted extent `L_n`, which is never
/// split, so the result is **bit-identical** to extracting the view and
/// calling the dense kernel.
///
/// # Panics
/// See [`ttm_view`].
pub fn ttm_view_into_threads(
    v: &TensorView,
    n: usize,
    a: &Matrix,
    out: &mut Vec<f64>,
    threads: usize,
) -> Shape {
    pack::with_thread_packs(|packs| ttm_view_into_impl(v, n, a, out, threads, packs))
}

/// Shared body of [`ttm_view_into_threads`] and
/// [`TtmWorkspace::ttm_view`]: the caller chooses where the pack staging
/// buffers live (thread-local pair vs. the workspace's pooled pair).
fn ttm_view_into_impl(
    v: &TensorView,
    n: usize,
    a: &Matrix,
    out: &mut Vec<f64>,
    threads: usize,
    packs: &mut PackPair,
) -> Shape {
    assert!(n < v.order(), "mode {n} out of range for view");
    let ln = v.dim(n);
    let k = a.nrows();
    assert_eq!(
        a.ncols(),
        ln,
        "TTM mode-{n} operand must have {ln} columns, got {}",
        a.ncols()
    );
    let mut od = v.dims().to_vec();
    od[n] = k;
    let out_shape = Shape::new(od); // rejects empty views (zero-length mode)
    if out.capacity() < out_shape.cardinality() {
        note_buffer_alloc();
    }
    out.clear();
    out.resize(out_shape.cardinality(), 0.0);
    if let Some(src) = v.contiguous_data() {
        ttm_src_body(src, v.dims(), n, a, out, threads, packs);
    } else {
        ttm_view_strided(v, n, a, out, packs);
    }
    out_shape
}

/// The strided-view TTM body: `out` is zeroed, shapes validated, view known
/// non-contiguous. Sequential; see [`ttm_view_into_threads`] for the
/// bit-exactness argument.
fn ttm_view_strided(v: &TensorView, n: usize, a: &Matrix, out: &mut [f64], packs: &mut PackPair) {
    let dims = v.dims();
    let strides = v.strides();
    let ln = dims[n];
    let sn = strides[n];
    let k = a.nrows();
    let data = v.data();
    let a_buf = a.as_slice();
    let inner: usize = dims[..n].iter().product();
    let outer: usize = dims[n + 1..].iter().product();
    let out_slab = inner * k;

    let outer_span = AxisSpan::over(dims, strides, |j| j > n);
    let inner_span = AxisSpan::over(dims, strides, |j| j < n);
    let (run, rstride, irest) = inner_span.split_run();

    if pack::use_packed(inner.saturating_mul(outer), k, ln) {
        if inner == 1 {
            // Mode 0: Out = A · V(0) — one GEMM per maximal constant-stride
            // column run of the outer space (a column split, which never
            // changes the per-element KC accumulation order).
            let (crun, cstride, orest) = outer_span.split_run();
            let mut col = 0usize;
            let mut grew = false;
            for base in orest.offsets() {
                let dst = &mut out[col * k..(col + crun) * k];
                grew |= pack::gemm_packed(
                    k,
                    crun,
                    ln,
                    a_buf,
                    1,
                    k,
                    &data[base..],
                    sn,
                    cstride,
                    1.0,
                    dst,
                    k,
                    packs,
                );
                col += crun;
            }
            if grew {
                note_buffer_alloc();
            }
            return;
        }

        // General mode: pack Aᵀ once and stream it from one GEMM per
        // (outer position × maximal inner run) — a row split of the slab
        // GEMMs, equally harmless to the bits.
        let bp_len = pack::packed_b_full_len(ln, k);
        if packs.b.ensure(bp_len) {
            note_buffer_alloc();
        }
        pack::pack_b_full(packs.b.slice_mut(bp_len), ln, k, a_buf, k, 1);
        let bpack: &[f64] = packs.b.slice(bp_len);
        let apack = &mut packs.a;
        let mut grew = false;
        for (o, obase) in outer_span.offsets().enumerate() {
            let mut i0 = 0usize;
            for ibase in irest.offsets() {
                let dst = &mut out[o * out_slab + i0..][..(k - 1) * inner + run];
                grew |= pack::gemm_prepacked_b(
                    run,
                    k,
                    ln,
                    &data[obase + ibase..],
                    rstride,
                    sn,
                    bpack,
                    1.0,
                    dst,
                    inner,
                    apack,
                );
                i0 += run;
            }
        }
        if grew {
            note_buffer_alloc();
        }
        return;
    }

    // Naive branches: structural twins of the canonical slab loops, strided
    // reads, identical per-element accumulation order and zero-skips.
    let a_rows: Option<Matrix> = (inner == 1).then(|| a.transpose());
    for (o, obase) in outer_span.offsets().enumerate() {
        let dst = &mut out[o * out_slab..(o + 1) * out_slab];
        if let Some(at) = &a_rows {
            // dst[kk] = <A[kk, :], fiber> — eight-lane strided dot.
            for (d, row) in dst.iter_mut().zip(at.as_slice().chunks_exact(ln)) {
                *d = unrolled_dot_strided(row, 1, &data[obase..], sn, ln);
            }
        } else if inner >= 16 {
            // Out_o(:, kk) += A[kk, l] * V_o(:, l) — axpys over the inner
            // runs.
            for l in 0..ln {
                let acol = &a_buf[l * k..(l + 1) * k];
                for (kk, &alk) in acol.iter().enumerate() {
                    if alk == 0.0 {
                        continue;
                    }
                    let dcol = &mut dst[kk * inner..(kk + 1) * inner];
                    let mut i = 0usize;
                    for ibase in irest.offsets() {
                        let s0 = obase + ibase + l * sn;
                        for t in 0..run {
                            dcol[i + t] += alk * data[s0 + t * rstride];
                        }
                        i += run;
                    }
                }
            }
        } else {
            // Small inner: iterate the interleaved fibers, axpys over K.
            let mut i = 0usize;
            for ibase in irest.offsets() {
                for t in 0..run {
                    for l in 0..ln {
                        let x = data[obase + ibase + t * rstride + l * sn];
                        if x == 0.0 {
                            continue;
                        }
                        let acol = &a_buf[l * k..(l + 1) * k];
                        for (kk, &alk) in acol.iter().enumerate() {
                            dst[i + t + kk * inner] += alk * x;
                        }
                    }
                }
                i += run;
            }
        }
    }
}

/// The packed-kernel TTM body: `out` is zeroed, shapes validated.
///
/// * `inner == 1` (mode 0): one GEMM `Out[k×outer] = A[k×ln] · Src[ln×outer]`,
///   column-partitioned across workers. Per-element accumulation order only
///   depends on the `KC` blocking of `ln`, so any worker count produces
///   bit-identical results.
/// * `inner > 1`: `Aᵀ` is packed **once** into `packs.b` and shared
///   (read-only) by every slab and every worker; each slab runs
///   `Out_o[inner×k] = S_o[inner×ln] · Aᵀ` with only its `A`-side blocks
///   packed (workspace/thread-local buffer sequentially, worker-local
///   buffers in the parallel split).
///
/// Pack growth on the calling thread is counted as a tensor-buffer
/// allocation; scoped worker threads are fresh per call and outside the
/// debug counter (same blind spot as the naive parallel path).
#[allow(clippy::too_many_arguments)]
fn ttm_packed(
    src: &[f64],
    a_buf: &[f64],
    inner: usize,
    ln: usize,
    k: usize,
    outer: usize,
    out: &mut [f64],
    threads: usize,
    packs: &mut PackPair,
) {
    if inner == 1 {
        // Mode 0: Out = A · Src with A[kk,l] = a_buf[kk + l*k] (strides 1, k)
        // and Src[l,o] = src[l + o*ln] (strides 1, ln).
        let workers = threads.max(1).min(outer.max(1));
        if workers > 1 {
            let per = outer.div_ceil(workers);
            out.par_chunks_mut(k * per)
                .enumerate()
                .for_each(|(w, dst)| {
                    let o0 = w * per;
                    let cols = dst.len() / k;
                    let mut local = PackPair::new();
                    pack::gemm_packed(
                        k,
                        cols,
                        ln,
                        a_buf,
                        1,
                        k,
                        &src[o0 * ln..],
                        1,
                        ln,
                        1.0,
                        dst,
                        k,
                        &mut local,
                    );
                });
        } else {
            let grew = pack::gemm_packed(k, outer, ln, a_buf, 1, k, src, 1, ln, 1.0, out, k, packs);
            if grew {
                note_buffer_alloc();
            }
        }
        return;
    }

    // General mode: pack the factor operand Aᵀ once (element (l, j) of Aᵀ is
    // A[j, l] = a_buf[j + l*k], i.e. strides (k, 1)) and stream it from
    // every slab GEMM.
    let bp_len = pack::packed_b_full_len(ln, k);
    if packs.b.ensure(bp_len) {
        note_buffer_alloc();
    }
    pack::pack_b_full(packs.b.slice_mut(bp_len), ln, k, a_buf, k, 1);
    let in_slab = inner * ln;
    let out_slab = inner * k;
    let workers = threads.max(1).min(outer.max(1));

    if inner < PACK_MIN_INNER {
        // Small inner: single slabs cannot fill MR-row register tiles, so
        // consecutive slabs are staged together (see the run function).
        let bpack: &[f64] = packs.b.slice(bp_len);
        let rows_max = small_inner_rows(inner, outer);
        if workers > 1 {
            let per = outer.div_ceil(workers);
            out.par_chunks_mut(out_slab * per)
                .enumerate()
                .for_each(|(w, run)| {
                    let mut apack = PackBuf::new();
                    let (mut sin, mut sout) = (Vec::new(), Vec::new());
                    ttm_packed_small_inner_run(
                        &src[w * per * in_slab..],
                        bpack,
                        inner,
                        ln,
                        k,
                        run.len() / out_slab,
                        run,
                        &mut apack,
                        &mut sin,
                        &mut sout,
                    );
                });
        } else {
            with_small_inner_stage(|sin, sout| {
                // Grow the staging buffers up-front on the calling thread so
                // their growth is counted and the run itself stays in
                // capacity.
                if sin.capacity() < rows_max * ln || sout.capacity() < rows_max * k {
                    note_buffer_alloc();
                }
                sin.reserve(rows_max * ln);
                sout.reserve(rows_max * k);
                let grew = ttm_packed_small_inner_run(
                    src,
                    bpack,
                    inner,
                    ln,
                    k,
                    outer,
                    out,
                    &mut packs.a,
                    sin,
                    sout,
                );
                if grew {
                    note_buffer_alloc();
                }
            });
        }
        return;
    }

    if workers > 1 {
        let bpack: &[f64] = packs.b.slice(bp_len);
        let per = outer.div_ceil(workers);
        out.par_chunks_mut(out_slab * per)
            .enumerate()
            .for_each(|(w, run)| {
                let mut apack = PackBuf::new();
                for (i, dst) in run.chunks_mut(out_slab).enumerate() {
                    let o = w * per + i;
                    pack::gemm_prepacked_b(
                        inner,
                        k,
                        ln,
                        &src[o * in_slab..(o + 1) * in_slab],
                        1,
                        inner,
                        bpack,
                        1.0,
                        dst,
                        inner,
                        &mut apack,
                    );
                }
            });
    } else {
        let bpack: &[f64] = packs.b.slice(bp_len);
        let apack = &mut packs.a;
        let mut grew = false;
        for (o, dst) in out.chunks_mut(out_slab).enumerate() {
            grew |= pack::gemm_prepacked_b(
                inner,
                k,
                ln,
                &src[o * in_slab..(o + 1) * in_slab],
                1,
                inner,
                bpack,
                1.0,
                dst,
                inner,
                apack,
            );
        }
        if grew {
            note_buffer_alloc();
        }
    }
}

/// Rows of the small-inner staging matrix: enough consecutive slabs to
/// approach the `MC` L2 block (never fewer than two slabs, never more than
/// the whole slab range).
fn small_inner_rows(inner: usize, outer: usize) -> usize {
    (pack::MC / inner).max(2).min(outer) * inner
}

thread_local! {
    /// Reusable gather/scatter staging for the small-inner packed path
    /// (take-and-put-back like `with_thread_packs`, so re-entrant use sees
    /// fresh buffers instead of panicking).
    static SMALL_INNER_STAGE: std::cell::Cell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::Cell::new((Vec::new(), Vec::new())) };
}

fn with_small_inner_stage<R>(f: impl FnOnce(&mut Vec<f64>, &mut Vec<f64>) -> R) -> R {
    SMALL_INNER_STAGE.with(|cell| {
        let (mut sin, mut sout) = cell.take();
        let r = f(&mut sin, &mut sout);
        cell.set((sin, sout));
        r
    })
}

/// The small-inner packed body (`1 < inner < PACK_MIN_INNER`): slabs are too
/// short for `MR`-row register tiles on their own, so groups of up to
/// `MC/inner` consecutive slabs are gathered into one `(g·inner) × ln`
/// column-major staging matrix (row `o·inner + i` is fiber `i` of slab `o` —
/// every copy is a contiguous `inner`-length run), multiplied against the
/// shared `Aᵀ` pack with full tiles, and scattered back into the interleaved
/// output layout. Gather + scatter move `O((ln + k)·g·inner)` values per
/// group against `O(ln·k·g·inner)` multiply work, so the copies amortize for
/// any nontrivial `ln`, `k`. Per-element accumulation order depends only on
/// the `KC` blocking of `ln`, so grouping and worker count never change the
/// bits.
///
/// `src`/`out_run` start at the first slab of this run; `slabs` is the run
/// length. Returns whether `apack` grew (staging growth is accounted by the
/// caller).
#[allow(clippy::too_many_arguments)]
fn ttm_packed_small_inner_run(
    src: &[f64],
    bpack: &[f64],
    inner: usize,
    ln: usize,
    k: usize,
    slabs: usize,
    out_run: &mut [f64],
    apack: &mut PackBuf,
    stage_in: &mut Vec<f64>,
    stage_out: &mut Vec<f64>,
) -> bool {
    let in_slab = inner * ln;
    let out_slab = inner * k;
    let g_max = (pack::MC / inner).max(2);
    let mut grew = false;
    let mut o = 0;
    while o < slabs {
        let g = g_max.min(slabs - o);
        let rows = g * inner;
        stage_in.clear();
        stage_in.resize(rows * ln, 0.0);
        for ol in 0..g {
            let s = &src[(o + ol) * in_slab..][..in_slab];
            for l in 0..ln {
                stage_in[ol * inner + l * rows..][..inner]
                    .copy_from_slice(&s[l * inner..][..inner]);
            }
        }
        stage_out.clear();
        stage_out.resize(rows * k, 0.0);
        grew |= pack::gemm_prepacked_b(
            rows, k, ln, stage_in, 1, rows, bpack, 1.0, stage_out, rows, apack,
        );
        for ol in 0..g {
            let dst = &mut out_run[(o + ol) * out_slab..][..out_slab];
            for kk in 0..k {
                dst[kk * inner..][..inner]
                    .copy_from_slice(&stage_out[ol * inner + kk * rows..][..inner]);
            }
        }
        o += g;
    }
    grew
}

/// Grow-only buffer pool for TTM pipelines.
///
/// A chain (`T ×_{n₁} A₁ ×_{n₂} A₂ …`) ping-pongs between two pooled
/// buffers: each step acquires one, writes into it, and recycles its
/// predecessor. TTM-tree evaluation cycles through a slightly larger pool —
/// one live buffer per depth level plus siblings still awaiting their turn.
/// Either way, once the pool has seen one full iteration, subsequent
/// identical iterations acquire exact-size buffers and perform **zero
/// tensor-sized allocations**.
///
/// Buffers keep their capacity when recycled; `acquire` picks the smallest
/// buffer that fits (falling back to growing the largest) so steady-state
/// workloads with a fixed shape schedule converge to an allocation-free
/// fixed point.
///
/// The pool is grow-only **per shape schedule**, which is the right trade
/// for a batch run but leaks in a long-running server whose request shapes
/// vary: every new high-water shape parks another large buffer forever.
/// [`TtmWorkspace::with_limit`] (or [`set_pooled_bytes_limit`](TtmWorkspace::set_pooled_bytes_limit))
/// caps the bytes parked in the pool; `recycle` sheds smallest-capacity
/// buffers until the cap holds, so mixed-shape streams keep peak pooled
/// bytes bounded while the hottest (largest) buffers stay resident.
#[derive(Default)]
pub struct TtmWorkspace {
    free: Vec<Vec<f64>>,
    /// Cap on bytes parked in `free`; `None` keeps the classic grow-only
    /// behavior.
    limit_bytes: Option<usize>,
    /// Pooled pack-buffer pair for the packed kernel path: grows to the
    /// largest factor pack / slab block the workspace has seen, then every
    /// further call stages through it allocation-free. Not subject to
    /// `limit_bytes` (packs are KC-block-bounded, orders of magnitude
    /// smaller than the tensor buffers the cap exists for); see
    /// [`TtmWorkspace::pack_bytes`].
    packs: PackPair,
}

impl TtmWorkspace {
    /// An empty workspace (no buffers until the first recycle/growth).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace whose parked pool may not exceed `limit_bytes`.
    pub fn with_limit(limit_bytes: usize) -> Self {
        Self {
            limit_bytes: Some(limit_bytes),
            ..Self::default()
        }
    }

    /// Bytes held by the pooled pack buffers (the packed kernel path's
    /// staging space — grow-only, counted by the debug allocation counter
    /// when it grows, and excluded from the `limit_bytes` cap).
    pub fn pack_bytes(&self) -> usize {
        self.packs.allocated_bytes()
    }

    /// Set or clear (`None`) the parked-pool byte cap; applies immediately.
    pub fn set_pooled_bytes_limit(&mut self, limit_bytes: Option<usize>) {
        self.limit_bytes = limit_bytes;
        self.enforce_limit();
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Bytes held by parked buffers (capacity, not length — capacity is what
    /// a long-running process actually pays for).
    pub fn pooled_bytes(&self) -> usize {
        self.free
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f64>())
            .sum()
    }

    /// `Z = T ×_n A` into a pooled buffer. Allocation-free once the pool
    /// holds a buffer of sufficient capacity.
    ///
    /// # Panics
    /// Panics if `n` is out of range or `A.ncols() != L_n`.
    pub fn ttm(&mut self, t: &DenseTensor, n: usize, a: &Matrix) -> DenseTensor {
        self.ttm_threads(t, n, a, auto_threads(t, n, a))
    }

    /// [`TtmWorkspace::ttm`] with an explicit worker count (see
    /// [`ttm_into_threads`]): the pooled-buffer discipline is identical,
    /// only the slab partition is pinned instead of heuristic. The packed
    /// path stages through the workspace's own pooled pack buffers instead
    /// of the thread-local pair.
    ///
    /// # Panics
    /// Panics if `n` is out of range or `A.ncols() != L_n`.
    pub fn ttm_threads(
        &mut self,
        t: &DenseTensor,
        n: usize,
        a: &Matrix,
        threads: usize,
    ) -> DenseTensor {
        let out_card = t.cardinality() / t.shape().dim(n) * a.nrows();
        let mut buf = self.acquire(out_card);
        let shape = ttm_into_impl(t, n, a, &mut buf, threads, &mut self.packs);
        DenseTensor::from_vec(shape, buf)
    }

    /// [`ttm_view`] drawing the output buffer from the pool and staging the
    /// packed kernels through the workspace's pooled pack pair — the
    /// streaming entry point of the out-of-core tiled sweeps, where each
    /// tile of a larger-than-memory tensor enters the kernel as a borrowed
    /// view and only tile-sized intermediates ever touch the pool.
    ///
    /// Contiguous views (every slab along the last mode is one) run the
    /// canonical kernels with `threads` workers; genuinely strided views
    /// run the sequential run-decomposition.
    ///
    /// # Panics
    /// Panics if `n` is out of range, `A.ncols()` does not match the view's
    /// mode-`n` extent, or the view is empty.
    pub fn ttm_view_threads(
        &mut self,
        v: &TensorView,
        n: usize,
        a: &Matrix,
        threads: usize,
    ) -> DenseTensor {
        assert!(n < v.order(), "mode {n} out of range for view");
        let out_card = v.cardinality() / v.dim(n).max(1) * a.nrows();
        let mut buf = self.acquire(out_card);
        let shape = ttm_view_into_impl(v, n, a, &mut buf, threads, &mut self.packs);
        DenseTensor::from_vec(shape, buf)
    }

    /// [`TtmWorkspace::ttm_view_threads`] with the same worker heuristic as
    /// [`ttm_view_into`].
    pub fn ttm_view(&mut self, v: &TensorView, n: usize, a: &Matrix) -> DenseTensor {
        assert!(n < v.order(), "mode {n} out of range for view");
        let dims = v.dims();
        let inner: usize = dims[..n].iter().product();
        let outer: usize = dims[n + 1..].iter().product();
        let work = inner * dims[n] * a.nrows();
        let threads = if outer > 1 {
            crate::threads::heuristic_threads(work, PAR_MIN_WORK)
        } else {
            1
        };
        self.ttm_view_threads(v, n, a, threads)
    }

    /// TTM-chain over distinct modes, ping-ponging between pooled buffers
    /// (intermediates are recycled as soon as the next step consumed them).
    ///
    /// # Panics
    /// Panics if a mode repeats or any operand shape is inconsistent.
    pub fn ttm_chain(&mut self, t: &DenseTensor, ops: &[(usize, &Matrix)]) -> DenseTensor {
        validate_chain_modes(t, ops);
        let mut cur: Option<DenseTensor> = None;
        for &(n, a) in ops {
            let next = match cur.as_ref() {
                None => self.ttm(t, n, a),
                Some(z) => self.ttm(z, n, a),
            };
            if let Some(old) = cur.replace(next) {
                self.recycle(old);
            }
        }
        cur.unwrap_or_else(|| t.clone())
    }

    /// Return a tensor's buffer to the pool for reuse. If a pooled-bytes
    /// limit is set, smallest-capacity buffers are dropped until the pool
    /// fits (the incoming buffer competes on equal terms, so a single
    /// over-limit buffer is itself rejected).
    pub fn recycle(&mut self, t: DenseTensor) {
        self.free.push(t.into_vec());
        self.enforce_limit();
    }

    /// Shed smallest-capacity buffers until `pooled_bytes() <= limit`.
    fn enforce_limit(&mut self) {
        let Some(limit) = self.limit_bytes else {
            return;
        };
        while self.pooled_bytes() > limit {
            let smallest = self
                .free
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
                .expect("pooled_bytes > 0 implies a non-empty pool");
            self.free.swap_remove(smallest);
        }
    }

    /// Pop the best-fitting free buffer: the smallest whose capacity covers
    /// `len`, else the largest available (it will grow once), else a fresh
    /// empty `Vec` (growth is counted by [`ttm_into`]).
    fn acquire(&mut self, len: usize) -> Vec<f64> {
        let mut best: Option<(bool, usize, usize)> = None; // (fits, capacity, index)
        for (i, b) in self.free.iter().enumerate() {
            let cap = b.capacity();
            let fits = cap >= len;
            let better = match best {
                None => true,
                Some((bf, bc, _)) => {
                    if fits != bf {
                        fits
                    } else if fits {
                        cap < bc
                    } else {
                        cap > bc
                    }
                }
            };
            if better {
                best = Some((fits, cap, i));
            }
        }
        match best {
            Some((_, _, i)) => self.free.swap_remove(i),
            None => Vec::new(),
        }
    }
}

/// Reference TTM that materializes the unfolding: `fold(A · unfold(T, n))`.
///
/// Used to validate the blocked kernel and as the baseline in the kernel
/// ablation bench.
pub fn ttm_explicit_unfold(t: &DenseTensor, n: usize, a: &Matrix) -> DenseTensor {
    let u = unfold(t, n);
    let z = gemm(a, Transpose::No, &u, Transpose::No, 1.0);
    let out_shape = t.shape().with_dim(n, a.nrows());
    fold(&z, n, &out_shape)
}

/// TTM-chain: multiply along several distinct modes in the order given.
///
/// `ops` pairs each mode with its matrix. By the commutativity of TTM-chains
/// (paper §2.1) any order yields the same tensor; order only affects cost.
///
/// Convenience wrapper over [`TtmWorkspace::ttm_chain`] with a throwaway
/// workspace (intermediates still ping-pong between two buffers).
///
/// # Panics
/// Panics if a mode repeats or any operand shape is inconsistent.
pub fn ttm_chain(t: &DenseTensor, ops: &[(usize, &Matrix)]) -> DenseTensor {
    TtmWorkspace::new().ttm_chain(t, ops)
}

/// Shared validation for TTM-chains: every mode in range, none repeated.
fn validate_chain_modes(t: &DenseTensor, ops: &[(usize, &Matrix)]) {
    let mut seen = vec![false; t.order()];
    for &(n, _) in ops {
        assert!(n < t.order(), "mode {n} out of range");
        assert!(!seen[n], "mode {n} repeated in TTM-chain");
        seen[n] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_tensor(dims: &[usize], seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        DenseTensor::random(Shape::new(dims.to_vec()), &dist, &mut rng)
    }

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        Matrix::random(r, c, &dist, &mut rng)
    }

    /// Elementwise-definition reference: z[c with c_n = k] = Σ_l A[k,l] t[c with c_n = l].
    fn ttm_naive(t: &DenseTensor, n: usize, a: &Matrix) -> DenseTensor {
        let out_shape = t.shape().with_dim(n, a.nrows());
        DenseTensor::from_fn(out_shape, |c| {
            let mut src = c.to_vec();
            (0..t.shape().dim(n))
                .map(|l| {
                    src[n] = l;
                    a[(c[n], l)] * t.get(&src)
                })
                .sum()
        })
    }

    #[test]
    fn matches_naive_all_modes() {
        let t = rand_tensor(&[4, 5, 3, 6], 1);
        for n in 0..4 {
            let a = rand_mat(2, t.shape().dim(n), 10 + n as u64);
            let z = ttm(&t, n, &a);
            let r = ttm_naive(&t, n, &a);
            assert_eq!(z.shape(), r.shape());
            assert!(z.max_abs_diff(&r) < 1e-12, "mode {n}");
        }
    }

    #[test]
    fn matches_explicit_unfold_kernel() {
        let t = rand_tensor(&[7, 6, 5], 2);
        for n in 0..3 {
            let a = rand_mat(4, t.shape().dim(n), 20 + n as u64);
            let z1 = ttm(&t, n, &a);
            let z2 = ttm_explicit_unfold(&t, n, &a);
            assert!(z1.max_abs_diff(&z2) < 1e-12, "mode {n}");
        }
    }

    #[test]
    fn output_shape_replaces_mode_length() {
        let t = rand_tensor(&[3, 4, 5], 3);
        let a = rand_mat(2, 4, 30);
        let z = ttm(&t, 1, &a);
        assert_eq!(z.shape().dims(), &[3, 2, 5]);
        assert_eq!(z.cardinality(), 30);
    }

    #[test]
    fn identity_matrix_is_noop() {
        let t = rand_tensor(&[3, 4, 5], 4);
        for n in 0..3 {
            let id = Matrix::identity(t.shape().dim(n));
            let z = ttm(&t, n, &id);
            assert!(z.max_abs_diff(&t) < 1e-15, "mode {n}");
        }
    }

    #[test]
    fn chain_commutativity() {
        // (T ×_1 A) ×_2 B == (T ×_2 B) ×_1 A  (paper §2.1)
        let t = rand_tensor(&[4, 5, 6], 5);
        let a = rand_mat(2, 5, 50);
        let b = rand_mat(3, 6, 51);
        let z1 = ttm_chain(&t, &[(1, &a), (2, &b)]);
        let z2 = ttm_chain(&t, &[(2, &b), (1, &a)]);
        assert_eq!(z1.shape().dims(), &[4, 2, 3]);
        assert!(z1.max_abs_diff(&z2) < 1e-12);
    }

    #[test]
    fn full_chain_all_orders_agree() {
        let t = rand_tensor(&[3, 4, 5], 6);
        let mats: Vec<Matrix> = (0..3)
            .map(|n| rand_mat(2, t.shape().dim(n), 60 + n as u64))
            .collect();
        let orders: &[[usize; 3]] = &[
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let reference = ttm_chain(&t, &[(0, &mats[0]), (1, &mats[1]), (2, &mats[2])]);
        for ord in orders {
            let ops: Vec<(usize, &Matrix)> = ord.iter().map(|&n| (n, &mats[n])).collect();
            let z = ttm_chain(&t, &ops);
            assert!(z.max_abs_diff(&reference) < 1e-12, "order {ord:?}");
        }
    }

    #[test]
    fn empty_chain_clones_input() {
        let t = rand_tensor(&[2, 3], 7);
        let z = ttm_chain(&t, &[]);
        assert_eq!(z.max_abs_diff(&t), 0.0);
    }

    #[test]
    fn large_mode0_path() {
        // Exercises the inner==1 specialization.
        let t = rand_tensor(&[64, 9, 8], 8);
        let a = rand_mat(16, 64, 80);
        let z1 = ttm(&t, 0, &a);
        let z2 = ttm_explicit_unfold(&t, 0, &a);
        assert!(z1.max_abs_diff(&z2) < 1e-11);
    }

    #[test]
    fn small_inner_packed_path_matches_naive() {
        // 1 < inner < PACK_MIN_INNER with enough work to clear the packing
        // threshold: the slab-grouped gather/GEMM/scatter path must stay
        // exact across group-boundary shapes (inner dividing MC or not,
        // outer a multiple of the group width or not).
        for (dims, n, k) in [
            (vec![4, 40, 50], 1, 12),
            (vec![2, 60, 41], 1, 8),
            (vec![15, 33, 21], 1, 9),
            (vec![3, 5, 30, 24], 2, 10),
            (vec![8, 24, 96], 1, 16),
        ] {
            let t = rand_tensor(&dims, 31);
            let inner: usize = dims[..n].iter().product();
            assert!(
                inner > 1 && inner < 16,
                "shape must hit the small-inner gap"
            );
            let a = rand_mat(k, t.shape().dim(n), 310 + n as u64);
            let z = ttm(&t, n, &a);
            let r = ttm_explicit_unfold(&t, n, &a);
            assert!(z.max_abs_diff(&r) < 1e-12, "dims {dims:?} mode {n} k {k}");
        }
    }

    #[test]
    fn small_inner_thread_counts_are_bit_identical() {
        // Worker splits restart slab grouping at each run boundary; the
        // per-element accumulation order must not notice.
        let t = rand_tensor(&[6, 48, 40], 32);
        let a = rand_mat(16, 48, 320);
        let mut buf = Vec::new();
        let s = ttm_into_threads(&t, 1, &a, &mut buf, 1);
        let reference = DenseTensor::from_vec(s, buf);
        for w in [2usize, 3, 8, 64] {
            let mut buf = Vec::new();
            let s = ttm_into_threads(&t, 1, &a, &mut buf, w);
            let z = DenseTensor::from_vec(s, buf);
            assert_eq!(z.max_abs_diff(&reference), 0.0, "{w} workers");
        }
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let t = rand_tensor(&[7, 6, 5], 16);
        for n in 0..3 {
            let a = rand_mat(3, t.shape().dim(n), 160 + n as u64);
            let reference = ttm(&t, n, &a);
            for w in [1usize, 2, 4, 64] {
                let mut buf = Vec::new();
                let s = ttm_into_threads(&t, n, &a, &mut buf, w);
                let z = DenseTensor::from_vec(s, buf);
                assert!(z.max_abs_diff(&reference) < 1e-12, "mode {n}, {w} workers");
            }
        }
    }

    #[test]
    fn view_full_tensor_ttm_is_bit_identical() {
        let t = rand_tensor(&[6, 5, 4], 40);
        let v = crate::view::TensorView::of(&t);
        for n in 0..3 {
            let a = rand_mat(3, t.shape().dim(n), 400 + n as u64);
            let z = ttm_view(&v, n, &a);
            assert_eq!(z.max_abs_diff(&ttm(&t, n, &a)), 0.0, "mode {n}");
        }
    }

    #[test]
    fn view_region_ttm_matches_extract_bitwise() {
        use crate::subtensor::{extract, Region};
        let t = rand_tensor(&[7, 6, 5], 41);
        let r = Region {
            start: vec![1, 2, 0],
            len: vec![5, 3, 4],
        };
        let v = crate::view::TensorView::region(&t, &r);
        let c = DenseTensor::from_vec(r.shape(), extract(&t, &r));
        for n in 0..3 {
            let a = rand_mat(4, c.shape().dim(n), 410 + n as u64);
            let mut b1 = Vec::new();
            let s1 = ttm_view_into_threads(&v, n, &a, &mut b1, 1);
            let mut b2 = Vec::new();
            let s2 = ttm_into_threads(&c, n, &a, &mut b2, 1);
            assert_eq!(s1.dims(), s2.dims(), "mode {n}");
            let z1 = DenseTensor::from_vec(s1, b1);
            let z2 = DenseTensor::from_vec(s2, b2);
            assert_eq!(z1.max_abs_diff(&z2), 0.0, "mode {n}");
        }
    }

    #[test]
    fn strided_view_ttm_packed_path_matches_bitwise() {
        // Interior region of a tensor big enough for the packed dispatch on
        // every mode (including the small-inner staging path on mode 1 of
        // the stepped view below).
        use crate::subtensor::{extract, Region};
        let t = rand_tensor(&[24, 20, 18], 42);
        let r = Region {
            start: vec![1, 1, 1],
            len: vec![20, 18, 16],
        };
        let v = crate::view::TensorView::region(&t, &r);
        let c = DenseTensor::from_vec(r.shape(), extract(&t, &r));
        for n in 0..3 {
            let a = rand_mat(8, c.shape().dim(n), 420 + n as u64);
            let mut b1 = Vec::new();
            let s1 = ttm_view_into_threads(&v, n, &a, &mut b1, 1);
            let mut b2 = Vec::new();
            let s2 = ttm_into_threads(&c, n, &a, &mut b2, 1);
            assert_eq!(s1.dims(), s2.dims(), "mode {n}");
            let z1 = DenseTensor::from_vec(s1, b1);
            let z2 = DenseTensor::from_vec(s2, b2);
            assert_eq!(z1.max_abs_diff(&z2), 0.0, "mode {n}");
        }
    }

    #[test]
    fn stepped_view_ttm_matches_copy_bitwise() {
        let t = rand_tensor(&[12, 10, 8], 43);
        let v = crate::view::TensorView::of(&t).step(0, 2).step(1, 3);
        let c = v.to_tensor();
        for n in 0..3 {
            let a = rand_mat(5, c.shape().dim(n), 430 + n as u64);
            let z1 = ttm_view(&v, n, &a);
            let mut b2 = Vec::new();
            let s2 = ttm_into_threads(&c, n, &a, &mut b2, 1);
            let z2 = DenseTensor::from_vec(s2, b2);
            assert_eq!(z1.max_abs_diff(&z2), 0.0, "mode {n}");
        }
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Big enough to trigger the rayon branch.
        let t = rand_tensor(&[32, 24, 20], 9);
        let a = rand_mat(8, 24, 90);
        let z1 = ttm(&t, 1, &a);
        let z2 = ttm_naive(&t, 1, &a);
        assert!(z1.max_abs_diff(&z2) < 1e-11);
    }

    #[test]
    #[should_panic(expected = "repeated in TTM-chain")]
    fn chain_rejects_duplicate_modes() {
        let t = rand_tensor(&[3, 3], 10);
        let a = rand_mat(2, 3, 100);
        let _ = ttm_chain(&t, &[(0, &a), (0, &a)]);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn ttm_rejects_bad_operand() {
        let t = rand_tensor(&[3, 4], 11);
        let a = rand_mat(2, 5, 110);
        let _ = ttm(&t, 0, &a);
    }

    #[test]
    fn ttm_into_reuses_buffer_without_reallocation() {
        let t = rand_tensor(&[6, 5, 4], 12);
        let a = rand_mat(3, 5, 120);
        let mut buf = Vec::new();
        let s1 = ttm_into(&t, 1, &a, &mut buf);
        assert_eq!(s1.dims(), &[6, 3, 4]);
        let first = DenseTensor::from_vec(s1, std::mem::take(&mut buf));
        assert!(first.max_abs_diff(&ttm(&t, 1, &a)) == 0.0);
        // Reuse for a smaller output: capacity must not shrink, result exact.
        let mut buf = first.into_vec();
        let cap = buf.capacity();
        let b = rand_mat(2, 6, 121);
        let s2 = ttm_into(&t, 0, &b, &mut buf);
        assert!(buf.capacity() >= cap, "grow-only buffer must keep capacity");
        let second = DenseTensor::from_vec(s2, buf);
        assert!(second.max_abs_diff(&ttm(&t, 0, &b)) < 1e-15);
    }

    #[test]
    fn workspace_chain_matches_fresh_ttm() {
        let t = rand_tensor(&[4, 5, 6], 13);
        let mats: Vec<Matrix> = (0..3)
            .map(|n| rand_mat(2 + n, t.shape().dim(n), 130 + n as u64))
            .collect();
        let ops: Vec<(usize, &Matrix)> = mats.iter().enumerate().collect();
        let mut ws = TtmWorkspace::new();
        // Repeat with the same workspace: reused buffers must stay exact.
        for _ in 0..3 {
            let z = ws.ttm_chain(&t, &ops);
            let r = ttm_chain(&t, &ops);
            assert_eq!(z.shape(), r.shape());
            assert_eq!(z.max_abs_diff(&r), 0.0);
            ws.recycle(z);
        }
        assert!(ws.pooled() >= 1);
    }

    #[test]
    fn warm_workspace_chain_is_allocation_free() {
        if !cfg!(debug_assertions) {
            return; // counter compiled out in release builds
        }
        let t = rand_tensor(&[8, 7, 6], 14);
        let mats: Vec<Matrix> = (0..3)
            .map(|n| rand_mat(3, t.shape().dim(n), 140 + n as u64))
            .collect();
        let ops: Vec<(usize, &Matrix)> = mats.iter().enumerate().collect();
        let mut ws = TtmWorkspace::new();
        let warm = ws.ttm_chain(&t, &ops);
        ws.recycle(warm);
        let before = crate::dense::tensor_buffer_allocs();
        let z = ws.ttm_chain(&t, &ops);
        assert_eq!(
            crate::dense::tensor_buffer_allocs(),
            before,
            "warm ping-pong chain must not allocate tensor buffers"
        );
        ws.recycle(z);
    }

    #[test]
    fn workspace_pack_buffers_pool_and_grow_only() {
        // Big enough for the packed path (inner = 24, work over threshold):
        // the first call grows the workspace's pack pair, repeats reuse it.
        let t = rand_tensor(&[24, 20, 18], 17);
        let a = rand_mat(8, 20, 170);
        let mut ws = TtmWorkspace::new();
        assert_eq!(ws.pack_bytes(), 0);
        let z = ws.ttm(&t, 1, &a);
        ws.recycle(z);
        let warm = ws.pack_bytes();
        assert!(warm > 0, "packed path must stage through the pooled pair");
        for _ in 0..3 {
            let z = ws.ttm(&t, 1, &a);
            ws.recycle(z);
        }
        assert_eq!(ws.pack_bytes(), warm, "pack pool must be grow-only");
    }

    #[test]
    fn bounded_workspace_caps_mixed_shape_stream() {
        // A long-running-server workload: each job's output tensor is
        // recycled when the job completes, and shapes vary with rare large
        // spikes. The unbounded pool parks every new high-water buffer
        // forever; the bounded pool must stay under its cap at every step.
        let limit = 40 * 1024; // 5120 f64s
        let shapes: &[&[usize]] = &[
            &[6, 5, 4],    // 120 f64s
            &[16, 16, 16], // 4096 f64s, ~32 KB — near the cap but under it
            &[4, 3, 2],
            &[24, 20, 18], // spike: 8640 f64s, ~69 KB — over the cap alone
            &[8, 7, 6],
            &[16, 16, 16],
        ];
        let run = |ws: &mut TtmWorkspace| -> usize {
            let mut hwm = 0usize;
            for (j, dims) in shapes.iter().enumerate() {
                let t = rand_tensor(dims, 200 + j as u64);
                // Square mode-0 operand: output cardinality == input's, the
                // shape a reconstruct-style job hands back to the pool.
                let a = rand_mat(dims[0], dims[0], 210 + j as u64);
                let z = ws.ttm(&t, 0, &a);
                let r = ttm(&t, 0, &a);
                assert_eq!(z.max_abs_diff(&r), 0.0, "job {j} must stay exact");
                ws.recycle(z);
                hwm = hwm.max(ws.pooled_bytes());
            }
            hwm
        };

        let mut bounded = TtmWorkspace::with_limit(limit);
        let bounded_hwm = run(&mut bounded);
        assert!(bounded_hwm > 0, "pool must actually be exercised");
        assert!(
            bounded_hwm <= limit,
            "peak pooled bytes {bounded_hwm} exceeds cap {limit}"
        );

        // Same stream, grow-only pool: the spike buffer is parked forever —
        // the regression this test guards against.
        let mut unbounded = TtmWorkspace::new();
        let unbounded_hwm = run(&mut unbounded);
        assert!(
            unbounded_hwm > limit,
            "stream must be big enough that the cap actually binds \
             (unbounded peak was {unbounded_hwm})"
        );
        assert!(unbounded.pooled_bytes() > limit);
    }

    #[test]
    fn limit_can_be_set_and_cleared_live() {
        let mut ws = TtmWorkspace::new();
        for i in 0..4 {
            ws.recycle(DenseTensor::from_vec(
                Shape::new(vec![256 * (i + 1)]),
                vec![0.0; 256 * (i + 1)],
            ));
        }
        let full = ws.pooled_bytes();
        assert!(full >= 256 * 10 * 8);
        ws.set_pooled_bytes_limit(Some(256 * 4 * 8));
        assert!(ws.pooled_bytes() <= 256 * 4 * 8);
        // Largest buffer survives the shed.
        assert_eq!(ws.pooled(), 1);
        ws.set_pooled_bytes_limit(None);
        ws.recycle(DenseTensor::from_vec(
            Shape::new(vec![4096]),
            vec![0.0; 4096],
        ));
        assert!(ws.pooled_bytes() > 256 * 4 * 8);
    }

    #[test]
    #[should_panic(expected = "repeated in TTM-chain")]
    fn workspace_chain_rejects_duplicate_modes() {
        let t = rand_tensor(&[3, 3], 15);
        let a = rand_mat(2, 3, 150);
        let _ = TtmWorkspace::new().ttm_chain(&t, &[(0, &a), (0, &a)]);
    }
}
