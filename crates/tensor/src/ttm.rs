//! Tensor-times-matrix (TTM) products.
//!
//! `Z = T ×_n A` applies the `K × L_n` matrix `A` to every mode-`n` fiber of
//! `T`; the result has the mode-`n` length replaced by `K` (paper §2.1).
//!
//! The kernel follows the blocking strategy of Austin et al. (paper §5): the
//! canonical layout factors the tensor into `outer = ∏_{j>n} L_j` contiguous
//! slabs, each an `inner × L_n` column-major matrix with
//! `inner = ∏_{j<n} L_j`. The TTM is then a batch of plain GEMMs
//! `Out_o = In_o · Aᵀ` on those slabs — **no unfolding is ever
//! materialized**. Slabs are independent, so the batch is rayon-parallel.
//!
//! [`ttm_explicit_unfold`] is the naive reference (materialize `T(n)`,
//! multiply, fold back); it is kept for tests and the kernel ablation bench.

use crate::dense::DenseTensor;
use crate::unfold::{fold, unfold};
use rayon::prelude::*;
use tucker_linalg::{gemm, Matrix, Transpose};

/// Minimum per-slab work before the slab loop goes parallel.
const PAR_MIN_WORK: usize = 1 << 14;

/// `Z = T ×_n A` with `A` of shape `K × L_n`.
///
/// # Panics
/// Panics if `n` is out of range or `A.ncols() != L_n`.
pub fn ttm(t: &DenseTensor, n: usize, a: &Matrix) -> DenseTensor {
    let shape = t.shape();
    assert!(n < shape.order(), "mode {n} out of range for {shape}");
    let ln = shape.dim(n);
    let k = a.nrows();
    assert_eq!(
        a.ncols(),
        ln,
        "TTM mode-{n} operand must have {ln} columns, got {}",
        a.ncols()
    );

    let inner = shape.inner_extent(n);
    let outer = shape.outer_extent(n);
    let out_shape = shape.with_dim(n, k);
    let mut out = vec![0.0; out_shape.cardinality()];
    let src = t.as_slice();
    let a_buf = a.as_slice(); // column-major K x Ln: A[k,l] = a_buf[k + l*K]

    let in_slab = inner * ln;
    let out_slab = inner * k;
    let work = in_slab * k;

    let do_slab = |(o, dst): (usize, &mut [f64])| {
        let s = &src[o * in_slab..(o + 1) * in_slab];
        if inner >= 16 {
            // Out_o(:, kk) += A[kk, l] * In_o(:, l) — long axpys over `inner`.
            for l in 0..ln {
                let sl = &s[l * inner..(l + 1) * inner];
                let acol = &a_buf[l * k..(l + 1) * k];
                for (kk, &alk) in acol.iter().enumerate() {
                    if alk == 0.0 {
                        continue;
                    }
                    let dcol = &mut dst[kk * inner..(kk + 1) * inner];
                    for (d, v) in dcol.iter_mut().zip(sl) {
                        *d += alk * v;
                    }
                }
            }
        } else {
            // Small inner (e.g. mode 0, inner == 1): iterate the `inner`
            // interleaved fibers and do axpys over K using A's contiguous
            // columns.
            for i in 0..inner {
                for l in 0..ln {
                    let x = s[i + l * inner];
                    if x == 0.0 {
                        continue;
                    }
                    let acol = &a_buf[l * k..(l + 1) * k];
                    for (kk, &alk) in acol.iter().enumerate() {
                        dst[i + kk * inner] += alk * x;
                    }
                }
            }
        }
    };

    if work >= PAR_MIN_WORK && outer > 1 {
        out.par_chunks_mut(out_slab).enumerate().for_each(do_slab);
    } else {
        out.chunks_mut(out_slab).enumerate().for_each(do_slab);
    }

    DenseTensor::from_vec(out_shape, out)
}

/// Reference TTM that materializes the unfolding: `fold(A · unfold(T, n))`.
///
/// Used to validate the blocked kernel and as the baseline in the kernel
/// ablation bench.
pub fn ttm_explicit_unfold(t: &DenseTensor, n: usize, a: &Matrix) -> DenseTensor {
    let u = unfold(t, n);
    let z = gemm(a, Transpose::No, &u, Transpose::No, 1.0);
    let out_shape = t.shape().with_dim(n, a.nrows());
    fold(&z, n, &out_shape)
}

/// TTM-chain: multiply along several distinct modes in the order given.
///
/// `ops` pairs each mode with its matrix. By the commutativity of TTM-chains
/// (paper §2.1) any order yields the same tensor; order only affects cost.
///
/// # Panics
/// Panics if a mode repeats or any operand shape is inconsistent.
pub fn ttm_chain(t: &DenseTensor, ops: &[(usize, &Matrix)]) -> DenseTensor {
    let mut seen = vec![false; t.order()];
    for &(n, _) in ops {
        assert!(n < t.order(), "mode {n} out of range");
        assert!(!seen[n], "mode {n} repeated in TTM-chain");
        seen[n] = true;
    }
    let mut cur: Option<DenseTensor> = None;
    for &(n, a) in ops {
        let next = match &cur {
            None => ttm(t, n, a),
            Some(z) => ttm(z, n, a),
        };
        cur = Some(next);
    }
    cur.unwrap_or_else(|| t.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_tensor(dims: &[usize], seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        DenseTensor::random(Shape::new(dims.to_vec()), &dist, &mut rng)
    }

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        Matrix::random(r, c, &dist, &mut rng)
    }

    /// Elementwise-definition reference: z[c with c_n = k] = Σ_l A[k,l] t[c with c_n = l].
    fn ttm_naive(t: &DenseTensor, n: usize, a: &Matrix) -> DenseTensor {
        let out_shape = t.shape().with_dim(n, a.nrows());
        DenseTensor::from_fn(out_shape, |c| {
            let mut src = c.to_vec();
            (0..t.shape().dim(n))
                .map(|l| {
                    src[n] = l;
                    a[(c[n], l)] * t.get(&src)
                })
                .sum()
        })
    }

    #[test]
    fn matches_naive_all_modes() {
        let t = rand_tensor(&[4, 5, 3, 6], 1);
        for n in 0..4 {
            let a = rand_mat(2, t.shape().dim(n), 10 + n as u64);
            let z = ttm(&t, n, &a);
            let r = ttm_naive(&t, n, &a);
            assert_eq!(z.shape(), r.shape());
            assert!(z.max_abs_diff(&r) < 1e-12, "mode {n}");
        }
    }

    #[test]
    fn matches_explicit_unfold_kernel() {
        let t = rand_tensor(&[7, 6, 5], 2);
        for n in 0..3 {
            let a = rand_mat(4, t.shape().dim(n), 20 + n as u64);
            let z1 = ttm(&t, n, &a);
            let z2 = ttm_explicit_unfold(&t, n, &a);
            assert!(z1.max_abs_diff(&z2) < 1e-12, "mode {n}");
        }
    }

    #[test]
    fn output_shape_replaces_mode_length() {
        let t = rand_tensor(&[3, 4, 5], 3);
        let a = rand_mat(2, 4, 30);
        let z = ttm(&t, 1, &a);
        assert_eq!(z.shape().dims(), &[3, 2, 5]);
        assert_eq!(z.cardinality(), 30);
    }

    #[test]
    fn identity_matrix_is_noop() {
        let t = rand_tensor(&[3, 4, 5], 4);
        for n in 0..3 {
            let id = Matrix::identity(t.shape().dim(n));
            let z = ttm(&t, n, &id);
            assert!(z.max_abs_diff(&t) < 1e-15, "mode {n}");
        }
    }

    #[test]
    fn chain_commutativity() {
        // (T ×_1 A) ×_2 B == (T ×_2 B) ×_1 A  (paper §2.1)
        let t = rand_tensor(&[4, 5, 6], 5);
        let a = rand_mat(2, 5, 50);
        let b = rand_mat(3, 6, 51);
        let z1 = ttm_chain(&t, &[(1, &a), (2, &b)]);
        let z2 = ttm_chain(&t, &[(2, &b), (1, &a)]);
        assert_eq!(z1.shape().dims(), &[4, 2, 3]);
        assert!(z1.max_abs_diff(&z2) < 1e-12);
    }

    #[test]
    fn full_chain_all_orders_agree() {
        let t = rand_tensor(&[3, 4, 5], 6);
        let mats: Vec<Matrix> = (0..3)
            .map(|n| rand_mat(2, t.shape().dim(n), 60 + n as u64))
            .collect();
        let orders: &[[usize; 3]] = &[
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let reference = ttm_chain(&t, &[(0, &mats[0]), (1, &mats[1]), (2, &mats[2])]);
        for ord in orders {
            let ops: Vec<(usize, &Matrix)> = ord.iter().map(|&n| (n, &mats[n])).collect();
            let z = ttm_chain(&t, &ops);
            assert!(z.max_abs_diff(&reference) < 1e-12, "order {ord:?}");
        }
    }

    #[test]
    fn empty_chain_clones_input() {
        let t = rand_tensor(&[2, 3], 7);
        let z = ttm_chain(&t, &[]);
        assert_eq!(z.max_abs_diff(&t), 0.0);
    }

    #[test]
    fn large_mode0_path() {
        // Exercises the inner==1 specialization.
        let t = rand_tensor(&[64, 9, 8], 8);
        let a = rand_mat(16, 64, 80);
        let z1 = ttm(&t, 0, &a);
        let z2 = ttm_explicit_unfold(&t, 0, &a);
        assert!(z1.max_abs_diff(&z2) < 1e-11);
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Big enough to trigger the rayon branch.
        let t = rand_tensor(&[32, 24, 20], 9);
        let a = rand_mat(8, 24, 90);
        let z1 = ttm(&t, 1, &a);
        let z2 = ttm_naive(&t, 1, &a);
        assert!(z1.max_abs_diff(&z2) < 1e-11);
    }

    #[test]
    #[should_panic(expected = "repeated in TTM-chain")]
    fn chain_rejects_duplicate_modes() {
        let t = rand_tensor(&[3, 3], 10);
        let a = rand_mat(2, 3, 100);
        let _ = ttm_chain(&t, &[(0, &a), (0, &a)]);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn ttm_rejects_bad_operand() {
        let t = rand_tensor(&[3, 4], 11);
        let a = rand_mat(2, 5, 110);
        let _ = ttm(&t, 0, &a);
    }
}
