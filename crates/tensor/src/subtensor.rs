//! Rectangular sub-tensor extraction and insertion.
//!
//! The distributed crate's block distribution assigns each rank an
//! axis-aligned box of the global tensor, and regridding (`MPI_Alltoallv` in
//! the paper, §5) moves box intersections between ranks. This module provides
//! the box arithmetic and the pack/unpack copies.

use crate::dense::DenseTensor;
use crate::shape::Shape;
use crate::view::{copy_into, TensorView, TensorViewMut};

/// An axis-aligned box `[start_n, start_n + len_n)` in every mode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Region {
    /// Inclusive start coordinate per mode.
    pub start: Vec<usize>,
    /// Extent per mode (all non-zero for a non-empty region).
    pub len: Vec<usize>,
}

impl Region {
    /// The region covering all of `shape`.
    pub fn full(shape: &Shape) -> Self {
        Region {
            start: vec![0; shape.order()],
            len: shape.dims().to_vec(),
        }
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.start.len()
    }

    /// Number of elements in the region.
    pub fn cardinality(&self) -> usize {
        self.len.iter().product()
    }

    /// Intersect two regions; `None` if the intersection is empty.
    ///
    /// # Panics
    /// Panics if the orders differ.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        assert_eq!(self.order(), other.order(), "region order mismatch");
        let mut start = Vec::with_capacity(self.order());
        let mut len = Vec::with_capacity(self.order());
        for n in 0..self.order() {
            let lo = self.start[n].max(other.start[n]);
            let hi = (self.start[n] + self.len[n]).min(other.start[n] + other.len[n]);
            if lo >= hi {
                return None;
            }
            start.push(lo);
            len.push(hi - lo);
        }
        Some(Region { start, len })
    }

    /// `true` if `coord` lies inside the region.
    pub fn contains(&self, coord: &[usize]) -> bool {
        coord
            .iter()
            .zip(self.start.iter().zip(&self.len))
            .all(|(&c, (&s, &l))| c >= s && c < s + l)
    }

    /// The region translated so that `origin` becomes coordinate zero.
    ///
    /// Used to convert a global-coordinate region into the local coordinates
    /// of a block whose global start is `origin`. Consumes the region and
    /// translates in place — no allocation, no extent clone.
    ///
    /// # Panics
    /// Panics if the region does not lie at or after `origin` in every mode.
    pub fn relative_to(mut self, origin: &[usize]) -> Region {
        for (s, &o) in self.start.iter_mut().zip(origin) {
            assert!(*s >= o, "region starts before origin");
            *s -= o;
        }
        self
    }

    /// Shape of the region's extents (clones them; see [`Region::into_shape`]
    /// when the region is owned and done with).
    pub fn shape(&self) -> Shape {
        Shape::new(self.len.clone())
    }

    /// Shape of the region's extents, consuming the region (no clone).
    pub fn into_shape(self) -> Shape {
        Shape::new(self.len)
    }
}

/// Copy the elements of `region` (in `t`'s coordinates) into a fresh
/// canonical-layout buffer of shape `region.len`.
///
/// # Panics
/// Panics if the region does not fit inside `t`.
pub fn extract(t: &DenseTensor, region: &Region) -> Vec<f64> {
    check_region(t.shape(), region);
    let src = TensorView::region(t, region);
    let mut out = vec![0.0; region.cardinality()];
    let mut dst = TensorViewMut::from_parts(&mut out, region.len.clone(), canonical(&region.len));
    copy_into(&src, &mut dst);
    out
}

/// Canonical (mode-0-fastest) strides of `dims`.
fn canonical(dims: &[usize]) -> Vec<usize> {
    let mut acc = 1usize;
    dims.iter()
        .map(|&d| {
            let s = acc;
            acc *= d;
            s
        })
        .collect()
}

fn check_region(shape: &Shape, region: &Region) {
    assert_eq!(region.order(), shape.order(), "region order mismatch");
    for n in 0..shape.order() {
        assert!(
            region.start[n] + region.len[n] <= shape.dim(n),
            "region exceeds tensor bounds in mode {n}"
        );
    }
}

/// Inverse of [`extract`]: write `data` (canonical layout of shape
/// `region.len`) into `region` of `t`.
///
/// # Panics
/// Panics if the region does not fit or `data` has the wrong length.
pub fn insert(t: &mut DenseTensor, region: &Region, data: &[f64]) {
    assert_eq!(data.len(), region.cardinality(), "data length mismatch");
    check_region(t.shape(), region);
    let src = TensorView::from_parts(data, region.len.clone(), canonical(&region.len));
    let mut dst = TensorViewMut::region(t, region);
    copy_into(&src, &mut dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting(dims: &[usize]) -> DenseTensor {
        let mut k = -1.0;
        DenseTensor::from_fn(Shape::new(dims.to_vec()), |_| {
            k += 1.0;
            k
        })
    }

    #[test]
    fn extract_full_is_identity() {
        let t = counting(&[3, 4, 2]);
        let r = Region::full(t.shape());
        assert_eq!(extract(&t, &r), t.as_slice());
    }

    #[test]
    fn extract_matches_elementwise() {
        let t = counting(&[4, 5, 3]);
        let r = Region {
            start: vec![1, 2, 0],
            len: vec![2, 3, 2],
        };
        let data = extract(&t, &r);
        let sub_shape = r.shape();
        for (i, c) in sub_shape.coords().enumerate() {
            let g: Vec<usize> = c.iter().zip(&r.start).map(|(a, b)| a + b).collect();
            assert_eq!(data[i], t.get(&g), "at {c:?}");
        }
    }

    #[test]
    fn insert_roundtrip() {
        let t = counting(&[4, 5, 3]);
        let r = Region {
            start: vec![2, 1, 1],
            len: vec![2, 4, 2],
        };
        let data = extract(&t, &r);
        let mut t2 = DenseTensor::zeros(t.shape().clone());
        insert(&mut t2, &r, &data);
        for c in t.shape().coords() {
            if r.contains(&c) {
                assert_eq!(t2.get(&c), t.get(&c));
            } else {
                assert_eq!(t2.get(&c), 0.0);
            }
        }
    }

    #[test]
    fn intersect_basic() {
        let a = Region {
            start: vec![0, 0],
            len: vec![4, 4],
        };
        let b = Region {
            start: vec![2, 3],
            len: vec![4, 4],
        };
        let i = a.intersect(&b).unwrap();
        assert_eq!(
            i,
            Region {
                start: vec![2, 3],
                len: vec![2, 1]
            }
        );
    }

    #[test]
    fn intersect_empty() {
        let a = Region {
            start: vec![0, 0],
            len: vec![2, 2],
        };
        let b = Region {
            start: vec![2, 0],
            len: vec![2, 2],
        };
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn intersect_is_commutative() {
        let a = Region {
            start: vec![1, 0, 2],
            len: vec![3, 5, 2],
        };
        let b = Region {
            start: vec![0, 2, 1],
            len: vec![3, 2, 3],
        };
        assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn relative_to_translates() {
        let r = Region {
            start: vec![5, 7],
            len: vec![2, 3],
        };
        let rel = r.relative_to(&[4, 7]);
        assert_eq!(
            rel,
            Region {
                start: vec![1, 0],
                len: vec![2, 3]
            }
        );
    }

    #[test]
    fn one_dim_region() {
        let t = counting(&[10]);
        let r = Region {
            start: vec![3],
            len: vec![4],
        };
        assert_eq!(extract(&t, &r), vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds tensor bounds")]
    fn out_of_bounds_extract_panics() {
        let t = counting(&[3, 3]);
        let r = Region {
            start: vec![2, 0],
            len: vec![2, 3],
        };
        let _ = extract(&t, &r);
    }
}
