//! Norms and decomposition-error metrics.

use crate::dense::DenseTensor;

/// Frobenius norm `‖T‖ = sqrt(Σ x²)`.
pub fn fro_norm(t: &DenseTensor) -> f64 {
    fro_norm_sq(t).sqrt()
}

/// Squared Frobenius norm.
///
/// Uses Neumaier-compensated summation so the result is correctly rounded
/// independent of tensor size; naive summation drifts by `O(√n·ε)`, which is
/// enough to poison the `‖T‖² − ‖G‖²` error formula on large tensors.
pub fn fro_norm_sq(t: &DenseTensor) -> f64 {
    compensated_sum(t.as_slice().iter().map(|x| x * x))
}

/// Neumaier (improved Kahan) compensated summation.
fn compensated_sum(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for x in values {
        let t = sum + x;
        comp += if sum.abs() >= x.abs() {
            (sum - t) + x
        } else {
            (x - t) + sum
        };
        sum = t;
    }
    sum + comp
}

/// Normalized root-mean-square error between the input tensor and a
/// recovered tensor: `‖T − Z‖ / ‖T‖` (paper §2.2).
///
/// # Panics
/// Panics on shape mismatch or if `T` is the zero tensor.
pub fn relative_error(t: &DenseTensor, z: &DenseTensor) -> f64 {
    assert_eq!(t.shape(), z.shape(), "shape mismatch");
    let denom = fro_norm(t);
    assert!(denom > 0.0, "relative error undefined for the zero tensor");
    let diff = compensated_sum(
        t.as_slice()
            .iter()
            .zip(z.as_slice())
            .map(|(a, b)| (a - b) * (a - b)),
    );
    diff.sqrt() / denom
}

/// Relative error computed without materializing the recovered tensor, valid
/// when the factor matrices are orthonormal: `‖T − Z‖² = ‖T‖² − ‖G‖²`.
///
/// `input_norm_sq` is `‖T‖²` and `core_norm_sq` is `‖G‖²`.
///
/// The subtraction is a catastrophic cancellation when the decomposition is
/// (near-)exact: both operands are correctly-rounded f64s, so their
/// difference carries `O(ε·‖T‖²)` noise and the formula cannot resolve
/// relative errors below `O(√ε) ≈ 1.5e-8` — any residual in that band is
/// indistinguishable from an exact decomposition. Differences at or below
/// the noise floor (including negative ones) are therefore reported as
/// exactly zero rather than as a spurious `~1e-8` error.
pub fn relative_error_from_core(input_norm_sq: f64, core_norm_sq: f64) -> f64 {
    assert!(
        input_norm_sq > 0.0,
        "relative error undefined for the zero tensor"
    );
    let noise_floor = 16.0 * f64::EPSILON * input_norm_sq;
    let diff = input_norm_sq - core_norm_sq;
    if diff <= noise_floor {
        return 0.0;
    }
    (diff / input_norm_sq).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fro_norm_known() {
        let t = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 2.0, 4.0]);
        assert!((fro_norm(&t) - 5.0).abs() < 1e-15);
        assert!((fro_norm_sq(&t) - 25.0).abs() < 1e-15);
    }

    #[test]
    fn zero_error_for_identical() {
        let t = DenseTensor::from_fn([3, 3], |c| (c[0] + c[1]) as f64 + 1.0);
        assert_eq!(relative_error(&t, &t), 0.0);
    }

    #[test]
    fn error_is_scale_invariant() {
        let t = DenseTensor::from_fn([4, 4], |c| (c[0] * 4 + c[1]) as f64 + 1.0);
        let mut z = t.clone();
        z.scale(0.9);
        let e1 = relative_error(&t, &z);
        let mut t2 = t.clone();
        t2.scale(10.0);
        let mut z2 = z.clone();
        z2.scale(10.0);
        let e2 = relative_error(&t2, &z2);
        assert!((e1 - e2).abs() < 1e-12);
    }

    #[test]
    fn core_identity_matches_direct() {
        // If Z == T exactly, ‖G‖² == ‖T‖² and both paths give 0.
        let t = DenseTensor::from_fn([2, 3], |c| (c[0] * 3 + c[1]) as f64 + 0.5);
        let n2 = fro_norm_sq(&t);
        assert_eq!(relative_error_from_core(n2, n2), 0.0);
    }

    #[test]
    fn core_formula_clamps_roundoff() {
        let e = relative_error_from_core(1.0, 1.0 + 1e-15);
        assert_eq!(e, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero tensor")]
    fn zero_tensor_rejected() {
        let t = DenseTensor::zeros([2, 2]);
        let _ = relative_error(&t, &t);
    }
}
