//! Zero-copy strided tensor views (ROADMAP item 4; the `ndslice` idiom).
//!
//! [`TensorView`] / [`TensorViewMut`] describe an N-dimensional window into a
//! flat `f64` buffer as `(data, dims, strides)`: element `(c₀ … c_{N−1})`
//! lives at `data[Σ c_j · stride_j]`. Unlike [`Shape`], view dims may be
//! **zero** (an empty window is a legal result of slicing) and strides are
//! arbitrary, so one buffer can be read as sub-regions, step-sampled
//! lattices, or whole tensors without copying. Views are the lingua franca
//! of the subtensor hot paths: `gram_view*` / `ttm_view_into*` consume them
//! directly (feeding strided panels into the packed kernel layer), and
//! [`copy_into`] is the single strided-copy primitive behind
//! `subtensor::extract` / `insert` and the regrid wire packing.
//!
//! # Ownership and borrow rules
//!
//! An immutable view borrows `&'a [f64]` and is freely clonable; overlapping
//! immutable views are fine. A mutable view holds a raw pointer (plus a
//! `PhantomData<&'a mut [f64]>` so the borrow checker still pins the source
//! exclusively for `'a`) because two disjoint mutable windows of one buffer
//! cannot be expressed as `&mut [f64]` slices. Safety then rests on one
//! invariant, checked at every mutable-view constructor: the
//! `(dims, strides)` map must be **injective** (no two coordinates share a
//! linear offset). The check is the sorted-stride nesting test — order the
//! modes with `dim > 1` by stride and require
//! `stride[i+1] ≥ stride[i] · dim[i]` — which every region/slice/step of a
//! canonical tensor satisfies by construction; hand-rolled aliasing layouts
//! (stride 0, interleaved strides) panic instead of handing out overlapping
//! `&mut` access. [`TensorViewMut::split_mut`] may therefore split along any
//! mode: injectivity makes the halves element-disjoint even when their
//! linear ranges interleave.
//!
//! # Why views keep the zero-alloc steady state
//!
//! A view is three words plus two short `Vec`s of mode metadata — never a
//! tensor-sized buffer. The kernel entry points taking views reuse the same
//! grow-only staging (pack buffers, the Gram mill scratch) as the owned-
//! tensor paths, and every growth of that staging is counted by the same
//! debug allocation counter ([`crate::dense::tensor_buffer_allocs`]), so a
//! steady-state sweep over views performs zero tensor-buffer allocations
//! exactly like the owned-tensor fast path.

use crate::dense::{note_buffer_alloc, DenseTensor};
use crate::shape::Shape;
use crate::subtensor::Region;
use std::marker::PhantomData;

thread_local! {
    /// Bytes moved by [`copy_into`] on this thread (release builds included:
    /// the regrid benches read it to prove the one-copy-per-block claim).
    static BYTES_COPIED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total bytes moved by [`copy_into`] on the calling thread so far. Take a
/// snapshot before and after a region to measure its copy traffic.
pub fn view_bytes_copied() -> u64 {
    BYTES_COPIED.with(|c| c.get())
}

/// Largest linear offset addressed by `(dims, strides)`, or `None` when the
/// index space is empty (some dim is zero).
fn max_offset(dims: &[usize], strides: &[usize]) -> Option<usize> {
    if dims.contains(&0) {
        return None;
    }
    Some(dims.iter().zip(strides).map(|(&d, &s)| (d - 1) * s).sum())
}

/// Panic unless `(dims, strides)` is an injective coordinate map (the
/// sorted-stride nesting test described in the module docs).
fn check_no_alias(dims: &[usize], strides: &[usize]) {
    if dims.contains(&0) {
        // No coordinates at all: injective vacuously (and the canonical
        // strides of an empty shape legitimately collapse to 0 past the
        // zero-length mode).
        return;
    }
    let mut modes: Vec<(usize, usize)> = dims
        .iter()
        .zip(strides)
        .filter(|(&d, _)| d > 1)
        .map(|(&d, &s)| (s, d))
        .collect();
    modes.sort_unstable();
    let mut floor = 1usize;
    for &(s, d) in &modes {
        assert!(
            s >= floor,
            "aliasing mutable view: stride {s} overlaps a faster mode (need ≥ {floor})"
        );
        floor = s * d;
    }
}

/// An immutable strided view: element `(c₀ … c_{N−1})` is
/// `data[Σ c_j · stride_j]`.
#[derive(Clone, Debug)]
pub struct TensorView<'a> {
    data: &'a [f64],
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl<'a> TensorView<'a> {
    /// The full (contiguous, canonical-stride) view of a tensor.
    pub fn of(t: &'a DenseTensor) -> Self {
        TensorView {
            data: t.as_slice(),
            dims: t.shape().dims().to_vec(),
            strides: t.shape().strides(),
        }
    }

    /// The view of `region` inside `t` (canonical parent strides, offset
    /// base).
    ///
    /// # Panics
    /// Panics if the region does not fit inside `t`.
    pub fn region(t: &'a DenseTensor, region: &Region) -> Self {
        let (off, dims, strides) = region_parts(t.shape(), region);
        TensorView {
            data: &t.as_slice()[off..],
            dims,
            strides,
        }
    }

    /// A view from raw parts. Bounds-checked: every coordinate must map
    /// inside `data`.
    ///
    /// # Panics
    /// Panics on arity mismatch or out-of-bounds extent.
    pub fn from_parts(data: &'a [f64], dims: Vec<usize>, strides: Vec<usize>) -> Self {
        assert_eq!(dims.len(), strides.len(), "dims/strides arity mismatch");
        if let Some(m) = max_offset(&dims, &strides) {
            assert!(
                m < data.len(),
                "view extent {m} out of bounds for buffer of {}",
                data.len()
            );
        }
        TensorView {
            data,
            dims,
            strides,
        }
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode lengths (may contain zeros, unlike [`Shape`]).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Length along mode `n`.
    #[inline]
    pub fn dim(&self, n: usize) -> usize {
        self.dims[n]
    }

    /// Strides per mode.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Stride of mode `n`.
    #[inline]
    pub fn stride(&self, n: usize) -> usize {
        self.strides[n]
    }

    /// Number of elements addressed by the view.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the view addresses no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dims.contains(&0)
    }

    /// Element at a coordinate.
    ///
    /// # Panics
    /// Panics (in debug builds) on wrong arity or out-of-bounds coordinate.
    #[inline]
    pub fn at(&self, coord: &[usize]) -> f64 {
        debug_assert_eq!(coord.len(), self.order(), "coordinate arity mismatch");
        debug_assert!(
            coord.iter().zip(&self.dims).all(|(&c, &d)| c < d),
            "coordinate {coord:?} out of bounds for dims {:?}",
            self.dims
        );
        let off: usize = coord.iter().zip(&self.strides).map(|(&c, &s)| c * s).sum();
        self.data[off]
    }

    /// The backing slice, starting at the view's origin.
    #[inline]
    pub(crate) fn data(&self) -> &'a [f64] {
        self.data
    }

    /// Restrict mode `mode` to `[start, start + len)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the mode length.
    pub fn slice(&self, mode: usize, start: usize, len: usize) -> TensorView<'a> {
        assert!(
            start + len <= self.dims[mode],
            "slice {start}+{len} out of bounds for mode {mode} of length {}",
            self.dims[mode]
        );
        let off = (start * self.strides[mode]).min(self.data.len());
        let mut dims = self.dims.clone();
        dims[mode] = len;
        TensorView {
            data: &self.data[off..],
            dims,
            strides: self.strides.clone(),
        }
    }

    /// Keep every `step`-th index of mode `mode` (a strided subsample).
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn step(&self, mode: usize, step: usize) -> TensorView<'a> {
        assert!(step > 0, "step must be positive");
        let mut dims = self.dims.clone();
        let mut strides = self.strides.clone();
        dims[mode] = self.dims[mode].div_ceil(step);
        strides[mode] *= step;
        TensorView {
            data: self.data,
            dims,
            strides,
        }
    }

    /// Split mode `mode` at `at` into `[0, at)` and `[at, len)` halves.
    pub fn split(&self, mode: usize, at: usize) -> (TensorView<'a>, TensorView<'a>) {
        (
            self.slice(mode, 0, at),
            self.slice(mode, at, self.dims[mode] - at),
        )
    }

    /// Whether the view is exactly the canonical (mode-0-fastest, densely
    /// packed) layout of its dims — length-1 modes may carry any stride.
    pub fn is_contiguous(&self) -> bool {
        let mut acc = 1usize;
        for (&d, &s) in self.dims.iter().zip(&self.strides) {
            if d > 1 && s != acc {
                return false;
            }
            acc *= d;
        }
        true
    }

    /// The backing data as a canonical-layout slice, if the view is
    /// contiguous and nonempty.
    pub fn contiguous_data(&self) -> Option<&'a [f64]> {
        if !self.is_empty() && self.is_contiguous() {
            Some(&self.data[..self.cardinality()])
        } else {
            None
        }
    }

    /// Materialize the view into an owned canonical tensor (one counted
    /// tensor-buffer allocation; test/bench helper, never a hot path).
    ///
    /// # Panics
    /// Panics if the view is empty ([`Shape`] forbids zero dims).
    pub fn to_tensor(&self) -> DenseTensor {
        note_buffer_alloc();
        let mut out = Vec::with_capacity(self.cardinality());
        let span = AxisSpan::over(&self.dims, &self.strides, |_| true);
        for base in span.offsets() {
            out.push(self.data[base]);
        }
        DenseTensor::from_vec(Shape::new(self.dims.clone()), out)
    }
}

/// A mutable strided view. Constructors enforce injectivity (see module
/// docs), which is what makes the raw-pointer `split_mut` sound.
#[derive(Debug)]
pub struct TensorViewMut<'a> {
    ptr: *mut f64,
    len: usize,
    dims: Vec<usize>,
    strides: Vec<usize>,
    _life: PhantomData<&'a mut [f64]>,
}

impl<'a> TensorViewMut<'a> {
    /// The full mutable view of a tensor.
    pub fn of(t: &'a mut DenseTensor) -> Self {
        let dims = t.shape().dims().to_vec();
        let strides = t.shape().strides();
        let s = t.as_mut_slice();
        TensorViewMut {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            dims,
            strides,
            _life: PhantomData,
        }
    }

    /// The mutable view of `region` inside `t`.
    ///
    /// # Panics
    /// Panics if the region does not fit inside `t`.
    pub fn region(t: &'a mut DenseTensor, region: &Region) -> Self {
        let (off, dims, strides) = region_parts(t.shape(), region);
        let s = &mut t.as_mut_slice()[off..];
        TensorViewMut {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            dims,
            strides,
            _life: PhantomData,
        }
    }

    /// A mutable view over a slice from raw parts.
    ///
    /// # Panics
    /// Panics on arity mismatch, out-of-bounds extent, or an **aliasing**
    /// layout (two coordinates mapping to one offset — e.g. a zero stride or
    /// interleaved strides fail the nesting test).
    pub fn from_parts(data: &'a mut [f64], dims: Vec<usize>, strides: Vec<usize>) -> Self {
        assert_eq!(dims.len(), strides.len(), "dims/strides arity mismatch");
        if let Some(m) = max_offset(&dims, &strides) {
            assert!(
                m < data.len(),
                "view extent {m} out of bounds for buffer of {}",
                data.len()
            );
        }
        check_no_alias(&dims, &strides);
        TensorViewMut {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            dims,
            strides,
            _life: PhantomData,
        }
    }

    /// Mode lengths.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Strides per mode.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of elements addressed by the view.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.dims.iter().product()
    }

    /// Reborrow as an immutable view.
    pub fn as_view(&self) -> TensorView<'_> {
        TensorView {
            data: unsafe { std::slice::from_raw_parts(self.ptr, self.len) },
            dims: self.dims.clone(),
            strides: self.strides.clone(),
        }
    }

    /// Restrict mode `mode` to `[start, start + len)`, consuming the view
    /// (mutable windows must not overlap, so narrowing takes ownership).
    ///
    /// # Panics
    /// Panics if the range exceeds the mode length.
    pub fn slice_mut(self, mode: usize, start: usize, len: usize) -> TensorViewMut<'a> {
        assert!(
            start + len <= self.dims[mode],
            "slice {start}+{len} out of bounds for mode {mode} of length {}",
            self.dims[mode]
        );
        let off = (start * self.strides[mode]).min(self.len);
        let mut dims = self.dims;
        dims[mode] = len;
        TensorViewMut {
            ptr: unsafe { self.ptr.add(off) },
            len: self.len - off,
            dims,
            strides: self.strides,
            _life: PhantomData,
        }
    }

    /// Split mode `mode` at `at` into two disjoint mutable halves
    /// (`[0, at)` and `[at, len)`).
    ///
    /// Sound even when the halves' linear ranges interleave: the injectivity
    /// invariant guarantees their element sets are disjoint.
    ///
    /// # Panics
    /// Panics if `at` exceeds the mode length.
    pub fn split_mut(self, mode: usize, at: usize) -> (TensorViewMut<'a>, TensorViewMut<'a>) {
        assert!(at <= self.dims[mode], "split point out of bounds");
        let mut lo_dims = self.dims.clone();
        lo_dims[mode] = at;
        let off = (at * self.strides[mode]).min(self.len);
        let mut hi_dims = self.dims.clone();
        hi_dims[mode] -= at;
        let lo = TensorViewMut {
            ptr: self.ptr,
            len: self.len,
            dims: lo_dims,
            strides: self.strides.clone(),
            _life: PhantomData,
        };
        let hi = TensorViewMut {
            ptr: unsafe { self.ptr.add(off) },
            len: self.len - off,
            dims: hi_dims,
            strides: self.strides,
            _life: PhantomData,
        };
        (lo, hi)
    }

    /// Write an element at a coordinate (test helper).
    pub fn set(&mut self, coord: &[usize], value: f64) {
        debug_assert_eq!(coord.len(), self.dims.len());
        let off: usize = coord.iter().zip(&self.strides).map(|(&c, &s)| c * s).sum();
        assert!(off < self.len);
        unsafe { *self.ptr.add(off) = value };
    }
}

/// Offset-from-base, dims, and strides of a region inside a shape.
fn region_parts(shape: &Shape, region: &Region) -> (usize, Vec<usize>, Vec<usize>) {
    assert_eq!(region.order(), shape.order(), "region arity mismatch");
    let strides = shape.strides();
    for ((&s, &l), &d) in region.start.iter().zip(&region.len).zip(shape.dims()) {
        assert!(s + l <= d, "region out of bounds for {shape}");
    }
    let off: usize = region
        .start
        .iter()
        .zip(&strides)
        .map(|(&s, &st)| s * st)
        .sum();
    // Clamp so an empty region at the far corner still yields a valid slice.
    (off.min(shape.cardinality()), region.len.clone(), strides)
}

/// Copy `src` into `dst` elementwise (same dims required) in one strided
/// pass: the longest canonical-contiguous prefix common to both views is
/// moved with `copy_from_slice` rows, the remaining modes walked by an
/// incremental odometer. Empty views copy nothing. Adds the moved byte
/// count to the thread's [`view_bytes_copied`] counter.
///
/// # Panics
/// Panics if the two views' dims differ.
pub fn copy_into(src: &TensorView, dst: &mut TensorViewMut) {
    assert_eq!(src.dims(), dst.dims(), "copy_into dims mismatch");
    if src.is_empty() {
        return;
    }
    let dims = src.dims();
    let order = dims.len();
    // Longest prefix that is canonically packed in BOTH layouts.
    let mut row = 1usize;
    let mut t = 0usize;
    while t < order {
        let (d, ss, ds) = (dims[t], src.strides[t], dst.strides[t]);
        if d > 1 && (ss != row || ds != row) {
            break;
        }
        row *= d;
        t += 1;
    }
    let sdata = src.data;
    let dst_ptr = dst.ptr;
    let outer = AxisSpan::over(&dims[t..], &src.strides[t..], |_| true);
    let outer_dst = AxisSpan::over(&dims[t..], &dst.strides[t..], |_| true);
    if t > 0 {
        for (sb, db) in outer.offsets().zip(outer_dst.offsets()) {
            debug_assert!(db + row <= dst.len);
            let d = unsafe { std::slice::from_raw_parts_mut(dst_ptr.add(db), row) };
            d.copy_from_slice(&sdata[sb..sb + row]);
        }
    } else {
        // Mode 0 is strided on at least one side: walk it elementwise inside
        // the odometer over modes 1…
        let (s0, d0, l0) = (src.strides[0], dst.strides[0], dims[0]);
        let inner = AxisSpan::over(&dims[1..], &src.strides[1..], |_| true);
        let inner_dst = AxisSpan::over(&dims[1..], &dst.strides[1..], |_| true);
        for (sb, db) in inner.offsets().zip(inner_dst.offsets()) {
            for i in 0..l0 {
                let off = db + i * d0;
                debug_assert!(off < dst.len);
                unsafe { *dst_ptr.add(off) = sdata[sb + i * s0] };
            }
        }
    }
    BYTES_COPIED.with(|c| c.set(c.get() + (src.cardinality() * std::mem::size_of::<f64>()) as u64));
}

/// The index space of a subset of a view's modes (dims of length 1 dropped),
/// enumerated in canonical lowest-mode-fastest order. Kernel helper: the
/// view-native Gram/TTM paths use it to walk fiber and slab spaces and to
/// peel the leading single-stride run off a strided operand.
#[derive(Clone, Debug)]
pub(crate) struct AxisSpan {
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl AxisSpan {
    /// Span over the modes of `(dims, strides)` selected by `keep` (called
    /// with the mode index). Length-1 modes are dropped (they contribute a
    /// single position at offset 0); zero-length modes are kept so the span
    /// is empty.
    pub fn over(dims: &[usize], strides: &[usize], keep: impl Fn(usize) -> bool) -> AxisSpan {
        let mut d = Vec::new();
        let mut s = Vec::new();
        for (j, (&dj, &sj)) in dims.iter().zip(strides).enumerate() {
            if keep(j) && dj != 1 {
                d.push(dj);
                s.push(sj);
            }
        }
        AxisSpan {
            dims: d,
            strides: s,
        }
    }

    /// Number of positions (product of dims; 0 when empty).
    pub fn count(&self) -> usize {
        self.dims.iter().product()
    }

    /// Peel the maximal leading single-stride run: returns
    /// `(run_len, run_stride, outer)` where positions factor as
    /// `offset = outer_base + i · run_stride` for `i < run_len` and `outer`
    /// enumerates the run bases. An empty span yields `(1, 1, empty)`.
    pub fn split_run(&self) -> (usize, usize, AxisSpan) {
        if self.dims.is_empty() {
            return (
                1,
                1,
                AxisSpan {
                    dims: vec![],
                    strides: vec![],
                },
            );
        }
        let mut run = self.dims[0];
        let mut j = 1;
        while j < self.dims.len() && self.strides[j] == self.strides[j - 1] * self.dims[j - 1] {
            run *= self.dims[j];
            j += 1;
        }
        (
            run,
            self.strides[0],
            AxisSpan {
                dims: self.dims[j..].to_vec(),
                strides: self.strides[j..].to_vec(),
            },
        )
    }

    /// Offset of the position with linear index `idx` (canonical order).
    pub fn offset_at(&self, mut idx: usize) -> usize {
        let mut off = 0;
        for (&d, &s) in self.dims.iter().zip(&self.strides) {
            off += (idx % d) * s;
            idx /= d;
        }
        off
    }

    /// Iterate all position offsets in canonical order.
    pub fn offsets(&self) -> SpanOffsets {
        self.offsets_from(0)
    }

    /// Iterate position offsets starting at linear index `start`.
    pub fn offsets_from(&self, start: usize) -> SpanOffsets {
        let total = self.count();
        let mut coord = Vec::with_capacity(self.dims.len());
        let mut idx = start;
        for &d in &self.dims {
            coord.push(if d == 0 { 0 } else { idx % d });
            idx /= if d == 0 { 1 } else { d };
        }
        SpanOffsets {
            dims: self.dims.clone(),
            strides: self.strides.clone(),
            coord,
            off: if start < total {
                self.offset_at(start)
            } else {
                0
            },
            remaining: total.saturating_sub(start),
        }
    }
}

/// Incremental odometer over an [`AxisSpan`]'s offsets.
pub(crate) struct SpanOffsets {
    dims: Vec<usize>,
    strides: Vec<usize>,
    coord: Vec<usize>,
    off: usize,
    remaining: usize,
}

impl Iterator for SpanOffsets {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let current = self.off;
        self.remaining -= 1;
        for j in 0..self.dims.len() {
            self.coord[j] += 1;
            self.off += self.strides[j];
            if self.coord[j] < self.dims[j] {
                break;
            }
            self.off -= self.strides[j] * self.dims[j];
            self.coord[j] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting(dims: &[usize]) -> DenseTensor {
        let mut k = -1.0;
        DenseTensor::from_fn(Shape::new(dims.to_vec()), |_| {
            k += 1.0;
            k
        })
    }

    #[test]
    fn full_view_is_contiguous_identity() {
        let t = counting(&[3, 4, 2]);
        let v = TensorView::of(&t);
        assert!(v.is_contiguous());
        assert_eq!(v.contiguous_data().unwrap(), t.as_slice());
        assert_eq!(v.at(&[2, 3, 1]), t.get(&[2, 3, 1]));
        assert_eq!(v.to_tensor().as_slice(), t.as_slice());
    }

    #[test]
    fn region_view_matches_extract() {
        let t = counting(&[4, 5, 3]);
        let r = Region {
            start: vec![1, 2, 0],
            len: vec![2, 3, 2],
        };
        let v = TensorView::region(&t, &r);
        assert!(!v.is_contiguous());
        assert_eq!(v.to_tensor().into_vec(), crate::subtensor::extract(&t, &r));
    }

    #[test]
    fn slice_step_split_compose() {
        let t = counting(&[6, 4]);
        let v = TensorView::of(&t);
        let s = v.slice(0, 1, 4).step(0, 2); // rows 1, 3
        assert_eq!(s.dims(), &[2, 4]);
        assert_eq!(s.at(&[0, 0]), t.get(&[1, 0]));
        assert_eq!(s.at(&[1, 2]), t.get(&[3, 2]));
        let (a, b) = v.split(1, 3);
        assert_eq!(a.dims(), &[6, 3]);
        assert_eq!(b.dims(), &[6, 1]);
        assert_eq!(b.at(&[2, 0]), t.get(&[2, 3]));
        assert!(a.is_contiguous(), "leading split of last mode stays packed");
    }

    #[test]
    fn empty_views_are_legal() {
        let t = counting(&[3, 3]);
        let v = TensorView::of(&t).slice(1, 3, 0);
        assert!(v.is_empty());
        assert_eq!(v.cardinality(), 0);
        let mut out = DenseTensor::zeros([3, 3]);
        let mut d = TensorViewMut::of(&mut out).slice_mut(1, 3, 0);
        copy_into(&v, &mut d); // no-op, must not panic
    }

    #[test]
    fn copy_into_roundtrips_region() {
        let t = counting(&[4, 5, 3]);
        let r = Region {
            start: vec![2, 1, 1],
            len: vec![2, 4, 2],
        };
        let mut t2 = DenseTensor::zeros(t.shape().clone());
        let before = view_bytes_copied();
        let src = TensorView::region(&t, &r);
        let mut dst = TensorViewMut::region(&mut t2, &r);
        copy_into(&src, &mut dst);
        assert_eq!(
            view_bytes_copied() - before,
            (r.cardinality() * 8) as u64,
            "every element moved exactly once"
        );
        for c in t.shape().coords() {
            let want = if r.contains(&c) { t.get(&c) } else { 0.0 };
            assert_eq!(t2.get(&c), want, "at {c:?}");
        }
    }

    #[test]
    fn copy_into_strided_mode0() {
        // Step mode 0 so no contiguous row exists on the source side.
        let t = counting(&[6, 3]);
        let v = TensorView::of(&t).step(0, 2); // 3x3
        let mut out = DenseTensor::zeros([3, 3]);
        let mut d = TensorViewMut::of(&mut out);
        copy_into(&v, &mut d);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(out.get(&[i, j]), t.get(&[2 * i, j]));
            }
        }
    }

    #[test]
    fn split_mut_halves_are_disjoint_writable() {
        let mut t = DenseTensor::zeros([4, 4]);
        let (mut a, mut b) = TensorViewMut::of(&mut t).split_mut(0, 2);
        a.set(&[1, 3], 1.0);
        b.set(&[1, 3], 2.0);
        assert_eq!(t.get(&[1, 3]), 1.0);
        assert_eq!(t.get(&[3, 3]), 2.0);
    }

    #[test]
    #[should_panic(expected = "aliasing mutable view")]
    fn aliasing_mut_layout_rejected() {
        let mut buf = vec![0.0; 8];
        // dims [4,2] strides [1,2]: offsets {0..3} and {0,2} interleave.
        let _ = TensorViewMut::from_parts(&mut buf, vec![4, 2], vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "aliasing mutable view")]
    fn zero_stride_mut_rejected() {
        let mut buf = vec![0.0; 8];
        let _ = TensorViewMut::from_parts(&mut buf, vec![2, 4], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_view_rejected() {
        let buf = vec![0.0; 8];
        let _ = TensorView::from_parts(&buf, vec![3, 3], vec![1, 3]);
    }

    #[test]
    fn axis_span_runs_and_offsets() {
        // dims [4,1,3,2] strides [1,99,4,12]: modes 0,2,3 survive; 0 and 2
        // nest (4*1=4) and 3 continues the nest (3*4=12), one run of 24.
        let span = AxisSpan::over(&[4, 1, 3, 2], &[1, 99, 4, 12], |_| true);
        assert_eq!(span.count(), 24);
        let (run, rs, outer) = span.split_run();
        assert_eq!((run, rs), (24, 1));
        assert_eq!(outer.count(), 1);
        // Broken nest: stride jumps to 5.
        let span = AxisSpan::over(&[4, 3], &[1, 5], |_| true);
        let (run, rs, outer) = span.split_run();
        assert_eq!((run, rs), (4, 1));
        assert_eq!(outer.count(), 3);
        let offs: Vec<usize> = span.offsets().collect();
        assert_eq!(offs[..5], [0, 1, 2, 3, 5]);
        assert_eq!(span.offset_at(7), span.offsets().nth(7).unwrap());
        let tail: Vec<usize> = span.offsets_from(7).collect();
        assert_eq!(tail, offs[7..].to_vec());
    }
}
