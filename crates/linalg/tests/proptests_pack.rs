//! Property tests for the packed micro-kernel layer (`tucker_linalg::pack`):
//! the packed GEMM/SYRK paths must match straightforward reference loops to
//! 1e-12 over random shapes, strides, ranges and scalings — including empty
//! `r0 == r1` / `c0 == c1` ranges and `k == 0` — and the SYRK paths must
//! never touch the upper triangle.
//!
//! The packed entry points are exercised **directly** (`pack::gemm_packed`,
//! `pack::syrk_packed_lower`) so coverage does not depend on the `Auto`
//! dispatch threshold, and the public `syrk_ata_lower`/`syrk_aat_lower`
//! helpers are run alongside so whichever path `Auto` picks is differential
//! against the same reference. No test flips the process-wide kernel mode:
//! the test binary runs tests concurrently and the mode is global.
//!
//! Cases are generated deterministically from a fixed per-test seed (see
//! `vendor/proptest`): CI runs are reproducible, and `PROPTEST_SEED` /
//! `PROPTEST_CASES` explore other streams or bound the case count.

use proptest::prelude::*;
use tucker_linalg::pack::{self, PackPair};
use tucker_linalg::{syrk_aat_lower, syrk_ata_lower};

/// Deterministic hash noise in [-0.5, 0.5).
fn noise(seed: u64, i: usize) -> f64 {
    let x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

fn noise_vec(seed: u64, len: usize) -> Vec<f64> {
    (0..len).map(|i| noise(seed, i)).collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `pack::gemm_packed` on random shapes (k = 0 included), random
    /// operand layouts (column-major or transposed view of a column-major
    /// buffer) and a padded output leading dimension matches the reference
    /// triple loop to 1e-12.
    #[test]
    fn packed_gemm_matches_reference(
        m in 1usize..=40,
        n in 1usize..=40,
        k in 0usize..=70,
        a_t in 0u8..2,
        b_t in 0u8..2,
        pad in 0usize..=3,
        seed in 0u64..10_000,
    ) {
        let alpha = 0.25 + noise(seed, 0).abs();
        // A strided view: column-major (rs=1, cs=m) or the transpose of a
        // column-major k×m buffer (rs=k, cs=1). Same for B.
        let (a_buf, a_rs, a_cs) = if a_t == 1 {
            (noise_vec(seed ^ 1, k * m), k, 1)
        } else {
            (noise_vec(seed ^ 1, m * k), 1, m)
        };
        let (b_buf, b_rs, b_cs) = if b_t == 1 {
            (noise_vec(seed ^ 2, n * k), n, 1)
        } else {
            (noise_vec(seed ^ 2, k * n), 1, k)
        };
        let ldc = m + pad;
        let mut c = noise_vec(seed ^ 3, ldc * n);
        let c0 = c.clone();

        let mut packs = PackPair::new();
        pack::gemm_packed(
            m, n, k, &a_buf, a_rs, a_cs, &b_buf, b_rs, b_cs, alpha, &mut c, ldc, &mut packs,
        );

        for j in 0..n {
            for i in 0..ldc {
                let got = c[i + j * ldc];
                if i >= m {
                    // Padding rows below the logical output are never touched.
                    prop_assert_eq!(got, c0[i + j * ldc]);
                    continue;
                }
                let dot: f64 = (0..k)
                    .map(|l| a_buf[i * a_rs + l * a_cs] * b_buf[l * b_rs + j * b_cs])
                    .sum();
                let want = c0[i + j * ldc] + alpha * dot;
                prop_assert!(close(got, want), "({i},{j}) {m}x{n}x{k}: {got} vs {want}");
            }
        }
    }

    /// `pack::syrk_packed_lower` and the public `syrk_ata_lower` (whatever
    /// path `Auto` dispatches) both match the reference lower-triangle
    /// `AᵀA` accumulate over a random row range — `r0 == r1` included — and
    /// neither writes the upper triangle.
    #[test]
    fn packed_syrk_ata_matches_reference(
        n in 1usize..=32,
        rows in 0usize..=60,
        extra in 0usize..=4,
        seed in 0u64..10_000,
    ) {
        let lda = rows + extra;
        let r0 = rows.min(extra);
        let r1 = rows;
        let a = noise_vec(seed, n * lda);

        // Reference accumulate into a noise-seeded lower triangle.
        let base = noise_vec(seed ^ 5, n * n);
        let mut want = base.clone();
        for l2 in 0..n {
            for l1 in l2..n {
                let dot: f64 = (r0..r1).map(|r| a[r + l1 * lda] * a[r + l2 * lda]).sum();
                want[l1 + l2 * n] += dot;
            }
        }

        // Direct packed call (operand Sᵀ: element (l1, l) at a[r0 + l + l1·lda]).
        let mut c_packed = base.clone();
        if r1 > r0 {
            let mut packs = PackPair::new();
            pack::syrk_packed_lower(n, r1 - r0, &a[r0..], lda, 1, 1.0, &mut c_packed, &mut packs);
        }
        // Public helper (Auto dispatch).
        let mut c_pub = base.clone();
        syrk_ata_lower(&a, lda, n, r0, r1, &mut c_pub);

        for l2 in 0..n {
            for l1 in 0..n {
                let (g_packed, g_pub) = (c_packed[l1 + l2 * n], c_pub[l1 + l2 * n]);
                if l1 < l2 {
                    // Upper triangle untouched by both.
                    prop_assert_eq!(g_packed, base[l1 + l2 * n]);
                    prop_assert_eq!(g_pub, base[l1 + l2 * n]);
                } else {
                    let w = want[l1 + l2 * n];
                    prop_assert!(close(g_packed, w), "packed ({l1},{l2}): {g_packed} vs {w}");
                    prop_assert!(close(g_pub, w), "public ({l1},{l2}): {g_pub} vs {w}");
                }
            }
        }
    }

    /// Same two-way differential for the `A·Aᵀ` column-range helper
    /// (`c0 == c1` empty ranges included).
    #[test]
    fn packed_syrk_aat_matches_reference(
        m in 1usize..=32,
        k in 0usize..=60,
        split in 0usize..=60,
        seed in 0u64..10_000,
    ) {
        let c0 = split.min(k);
        let c1 = k;
        let a = noise_vec(seed, m * k);

        let base = noise_vec(seed ^ 7, m * m);
        let mut want = base.clone();
        for j in 0..m {
            for i in j..m {
                let dot: f64 = (c0..c1).map(|l| a[i + l * m] * a[j + l * m]).sum();
                want[i + j * m] += dot;
            }
        }

        let mut c_packed = base.clone();
        if c1 > c0 {
            let mut packs = PackPair::new();
            pack::syrk_packed_lower(m, c1 - c0, &a[c0 * m..], 1, m, 1.0, &mut c_packed, &mut packs);
        }
        let mut c_pub = base.clone();
        syrk_aat_lower(&a, m, c0, c1, &mut c_pub);

        for j in 0..m {
            for i in 0..m {
                let (g_packed, g_pub) = (c_packed[i + j * m], c_pub[i + j * m]);
                if i < j {
                    prop_assert_eq!(g_packed, base[i + j * m]);
                    prop_assert_eq!(g_pub, base[i + j * m]);
                } else {
                    let w = want[i + j * m];
                    prop_assert!(close(g_packed, w), "packed ({i},{j}): {g_packed} vs {w}");
                    prop_assert!(close(g_pub, w), "public ({i},{j}): {g_pub} vs {w}");
                }
            }
        }
    }

    /// `pack::gemm_prepacked_b` (the shared-factor TTM path) is
    /// bit-identical to `pack::gemm_packed` on the same operands, for any
    /// shape and either B layout.
    #[test]
    fn prepacked_b_path_is_bit_identical(
        m in 1usize..=48,
        n in 1usize..=24,
        k in 1usize..=48,
        b_t in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let a = noise_vec(seed ^ 11, m * k);
        let (b_buf, b_rs, b_cs) = if b_t == 1 {
            (noise_vec(seed ^ 12, n * k), n, 1)
        } else {
            (noise_vec(seed ^ 12, k * n), 1, k)
        };

        let mut c_direct = vec![0.0; m * n];
        let mut packs = PackPair::new();
        pack::gemm_packed(
            m, n, k, &a, 1, m, &b_buf, b_rs, b_cs, 1.0, &mut c_direct, m, &mut packs,
        );

        let mut bpack = vec![0.0; pack::packed_b_full_len(k, n)];
        pack::pack_b_full(&mut bpack, k, n, &b_buf, b_rs, b_cs);
        let mut c_pre = vec![0.0; m * n];
        let mut apack = pack::PackBuf::new();
        pack::gemm_prepacked_b(m, n, k, &a, 1, m, &bpack, 1.0, &mut c_pre, m, &mut apack);

        prop_assert_eq!(c_direct, c_pre);
    }
}
