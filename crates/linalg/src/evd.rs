//! Symmetric eigendecomposition.
//!
//! The workspace's replacement for LAPACK `dsyevx` (used by the paper for the
//! SVD-via-Gram step, §5). Two independent solvers are provided:
//!
//! * [`sym_evd`] — Householder tridiagonalization (`tred2`) followed by the
//!   implicit-shift QL iteration (`tql2`). `O(n³)` with a small constant;
//!   this is the default used by the Tucker engine.
//! * [`jacobi_evd`] — cyclic Jacobi rotations. Slower but extremely robust;
//!   used in tests as an independent cross-check of `sym_evd`.
//!
//! Both return eigenvalues sorted in **descending** order (the Tucker code
//! always wants the leading subspace) with a deterministic eigenvector sign
//! convention: the component of largest magnitude in each eigenvector is
//! positive. The convention makes results reproducible across the sequential
//! and distributed engines so they can be compared elementwise.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `A = V · diag(λ) · Vᵀ`.
#[derive(Clone, Debug)]
pub struct SymEvd {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as columns, ordered to match `eigenvalues`.
    pub eigenvectors: Matrix,
}

impl SymEvd {
    /// The leading `k` eigenvectors as an `n x k` matrix.
    ///
    /// # Panics
    /// Panics if `k` exceeds the matrix order.
    pub fn leading(&self, k: usize) -> Matrix {
        self.eigenvectors.clone().truncate_cols(k)
    }
}

/// Maximum QL iterations per eigenvalue before declaring failure.
const MAX_QL_ITERS: usize = 50;

/// Symmetric EVD via Householder tridiagonalization + implicit-shift QL.
///
/// # Panics
/// Panics if `a` is not square, or if the QL iteration fails to converge
/// (which does not happen for finite symmetric input).
pub fn sym_evd(a: &Matrix) -> SymEvd {
    let (n, m) = a.shape();
    assert_eq!(n, m, "sym_evd needs a square matrix");
    if n == 0 {
        return SymEvd {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        };
    }

    // Work on a copy; `z` will accumulate the orthogonal transform and end as
    // the eigenvector matrix.
    let mut z = a.clone();
    let mut d = vec![0.0; n]; // diagonal
    let mut e = vec![0.0; n]; // sub-diagonal
    tred2(&mut z, &mut d, &mut e);
    tql2(&mut d, &mut e, &mut z);

    sort_descending_and_fix_signs(d, z)
}

/// Householder reduction of the symmetric matrix stored in `z` to tridiagonal
/// form; on exit `z` holds the accumulated orthogonal transformation, `d` the
/// diagonal and `e[1..]` the sub-diagonal. (Port of EISPACK `tred2`.)
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    let v = z[(i, k)] / scale;
                    z[(i, k)] = v;
                    h += v * v;
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            // Accumulate transformation.
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on the tridiagonal (`d`, `e`), accumulating
/// rotations into `z`. (Port of EISPACK `tql2`.)
fn tql2(d: &mut [f64], e: &mut [f64], z: &mut Matrix) {
    let n = d.len();
    if n <= 1 {
        return;
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(
                iter <= MAX_QL_ITERS,
                "tql2 failed to converge at eigenvalue {l}"
            );

            // Form implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate rotation into eigenvectors.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
}

/// Cyclic Jacobi eigensolver. Robust `O(n³ · sweeps)` reference
/// implementation used to cross-check [`sym_evd`].
///
/// # Panics
/// Panics if `a` is not square or the sweep limit (30) is exhausted.
pub fn jacobi_evd(a: &Matrix) -> SymEvd {
    let (n, m) = a.shape();
    assert_eq!(n, m, "jacobi_evd needs a square matrix");
    let mut a = a.clone();
    let mut v = Matrix::identity(n);
    if n == 0 {
        return SymEvd {
            eigenvalues: vec![],
            eigenvectors: v,
        };
    }

    let mut off = off_diag_norm(&a);
    let threshold = f64::EPSILON * a.fro_norm().max(f64::MIN_POSITIVE);
    let mut sweeps = 0;
    while off > threshold {
        sweeps += 1;
        assert!(sweeps <= 30, "jacobi_evd failed to converge");
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= threshold * 1e-2 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation to rows/cols p,q of a.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
        off = off_diag_norm(&a);
    }

    let d: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    sort_descending_and_fix_signs(d, v)
}

fn off_diag_norm(a: &Matrix) -> f64 {
    let n = a.nrows();
    let mut s = 0.0;
    for p in 0..n {
        for q in (p + 1)..n {
            s += 2.0 * a[(p, q)] * a[(p, q)];
        }
    }
    s.sqrt()
}

/// Sort eigenpairs by descending eigenvalue and apply the sign convention
/// (largest-magnitude component of each eigenvector is positive).
fn sort_descending_and_fix_signs(d: Vec<f64>, z: Matrix) -> SymEvd {
    let n = d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("NaN eigenvalue"));

    let mut eigenvalues = Vec::with_capacity(n);
    let mut eigenvectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        eigenvalues.push(d[src]);
        let col = z.col(src);
        // Deterministic sign: largest |component| made positive; ties broken
        // by the first index (max_by with strictly-greater keeps the first).
        let mut pivot = 0;
        let mut best = 0.0;
        for (i, &v) in col.iter().enumerate() {
            if v.abs() > best {
                best = v.abs();
                pivot = i;
            }
        }
        let sign = if col[pivot] < 0.0 { -1.0 } else { 1.0 };
        let dst_col = eigenvectors.col_mut(dst);
        for (o, &v) in dst_col.iter_mut().zip(col) {
            *o = sign * v;
        }
    }
    SymEvd {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_sym(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        let b = Matrix::random(n, n, &dist, &mut rng);
        // A = (B + Bᵀ)/2 is symmetric.
        Matrix::from_fn(n, n, |i, j| 0.5 * (b[(i, j)] + b[(j, i)]))
    }

    fn check_reconstruction(a: &Matrix, evd: &SymEvd, tol: f64) {
        let n = a.nrows();
        assert!(
            evd.eigenvectors.has_orthonormal_columns(tol),
            "V not orthonormal"
        );
        // A V = V diag(λ)
        let av = gemm(a, Transpose::No, &evd.eigenvectors, Transpose::No, 1.0);
        for j in 0..n {
            for i in 0..n {
                let expect = evd.eigenvalues[j] * evd.eigenvectors[(i, j)];
                assert!(
                    (av[(i, j)] - expect).abs() < tol * (1.0 + evd.eigenvalues[j].abs()),
                    "A·v ≠ λ·v at ({i},{j})"
                );
            }
        }
        // Descending order.
        for w in evd.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "eigenvalues not descending");
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, -1.0, 0.0], &[0.0, 0.0, 7.0]]);
        let evd = sym_evd(&a);
        let expect = [7.0, 3.0, -1.0];
        for (got, want) in evd.eigenvalues.iter().zip(expect) {
            assert!((got - want).abs() < 1e-12);
        }
        check_reconstruction(&a, &evd, 1e-10);
    }

    #[test]
    fn known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let evd = sym_evd(&a);
        assert!((evd.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((evd.eigenvalues[1] - 1.0).abs() < 1e-12);
        check_reconstruction(&a, &evd, 1e-12);
    }

    #[test]
    fn random_matrices_reconstruct() {
        for (n, seed) in [(1usize, 5u64), (2, 6), (5, 7), (24, 8), (60, 9)] {
            let a = rand_sym(n, seed);
            let evd = sym_evd(&a);
            check_reconstruction(&a, &evd, 1e-9);
        }
    }

    #[test]
    fn ql_and_jacobi_agree() {
        for (n, seed) in [(3usize, 21u64), (10, 22), (31, 23)] {
            let a = rand_sym(n, seed);
            let e1 = sym_evd(&a);
            let e2 = jacobi_evd(&a);
            for (l1, l2) in e1.eigenvalues.iter().zip(&e2.eigenvalues) {
                assert!((l1 - l2).abs() < 1e-9, "eigenvalue mismatch n={n}");
            }
            // With distinct eigenvalues the sign convention makes vectors
            // match elementwise.
            let gaps_ok = e1
                .eigenvalues
                .windows(2)
                .all(|w| (w[0] - w[1]).abs() > 1e-6);
            if gaps_ok {
                assert!(
                    e1.eigenvectors.max_abs_diff(&e2.eigenvectors) < 1e-7,
                    "eigenvector mismatch n={n}"
                );
            }
        }
    }

    #[test]
    fn rank_deficient_gram() {
        // A = x xᵀ has one nonzero eigenvalue = |x|².
        let x = [1.0, 2.0, 2.0];
        let a = Matrix::from_fn(3, 3, |i, j| x[i] * x[j]);
        let evd = sym_evd(&a);
        assert!((evd.eigenvalues[0] - 9.0).abs() < 1e-10);
        assert!(evd.eigenvalues[1].abs() < 1e-10);
        assert!(evd.eigenvalues[2].abs() < 1e-10);
        check_reconstruction(&a, &evd, 1e-9);
    }

    #[test]
    fn repeated_eigenvalues() {
        // 2*I has eigenvalue 2 with multiplicity 4; any orthonormal basis ok.
        let mut a = Matrix::identity(4);
        a.scale(2.0);
        let evd = sym_evd(&a);
        for l in &evd.eigenvalues {
            assert!((l - 2.0).abs() < 1e-12);
        }
        assert!(evd.eigenvectors.has_orthonormal_columns(1e-12));
    }

    #[test]
    fn leading_truncates() {
        let a = rand_sym(10, 40);
        let evd = sym_evd(&a);
        let lead = evd.leading(3);
        assert_eq!(lead.shape(), (10, 3));
        assert!(lead.has_orthonormal_columns(1e-9));
    }

    #[test]
    fn sign_convention_is_deterministic() {
        let a = rand_sym(12, 55);
        let e1 = sym_evd(&a);
        let e2 = sym_evd(&a);
        assert!(e1.eigenvectors.max_abs_diff(&e2.eigenvectors) == 0.0);
        // Pivot component positive in each column.
        for j in 0..12 {
            let col = e1.eigenvectors.col(j);
            let piv = col
                .iter()
                .cloned()
                .fold(0.0f64, |m, v| if v.abs() > m.abs() { v } else { m });
            assert!(piv >= 0.0);
        }
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(0, 0);
        let evd = sym_evd(&a);
        assert!(evd.eigenvalues.is_empty());
    }
}
