//! Leading left singular vectors via the Gram-matrix route.
//!
//! The paper (§5) computes the SVD step of HOOI as a distributed Gram product
//! `G = Z(n) Z(n)ᵀ` followed by a sequential symmetric EVD — the left
//! singular vectors of `Z(n)` are the eigenvectors of `G`, and the singular
//! values are the square roots of its (non-negative) eigenvalues. This module
//! provides the sequential building block; the distributed Gram accumulation
//! lives in `tucker-distsim`.

use crate::evd::{sym_evd, SymEvd};
use crate::matrix::Matrix;
use crate::syrk::{symmetrize, syrk};

/// Result of a Gram-based truncated SVD.
#[derive(Clone, Debug)]
pub struct GramSvd {
    /// Leading left singular vectors as columns (`m x k`).
    pub u: Matrix,
    /// Corresponding singular values, descending.
    pub singular_values: Vec<f64>,
}

/// Leading `k` left singular vectors of `a` (`m x n`), computed from the
/// `m x m` Gram matrix `a·aᵀ`.
///
/// # Panics
/// Panics if `k > m`.
pub fn leading_left_singular_vectors(a: &Matrix, k: usize) -> GramSvd {
    let m = a.nrows();
    assert!(k <= m, "cannot take {k} singular vectors from {m} rows");
    let gram = syrk(a);
    leading_from_gram(&gram, k)
}

/// Leading `k` eigenvector/singular-value pairs from an already-computed
/// Gram matrix (e.g. one that was all-reduced across ranks).
///
/// Negative eigenvalues produced by round-off are clamped to zero before the
/// square root.
///
/// # Panics
/// Panics if `gram` is not square or `k` exceeds its order.
pub fn leading_from_gram(gram: &Matrix, k: usize) -> GramSvd {
    let (m, n) = gram.shape();
    assert_eq!(m, n, "gram matrix must be square");
    assert!(
        k <= m,
        "cannot take {k} singular vectors from order-{m} gram"
    );
    let mut g = gram.clone();
    symmetrize(&mut g);
    let SymEvd {
        eigenvalues,
        eigenvectors,
    } = sym_evd(&g);
    let u = eigenvectors.truncate_cols(k);
    let singular_values = eigenvalues[..k]
        .iter()
        .map(|&l| l.max(0.0).sqrt())
        .collect();
    GramSvd { u, singular_values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        Matrix::random(r, c, &dist, &mut rng)
    }

    #[test]
    fn diagonal_singular_values() {
        // A = diag(3, 2) padded: singular values are 3, 2.
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 2.0, 0.0]]);
        let svd = leading_left_singular_vectors(&a, 2);
        assert!((svd.singular_values[0] - 3.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-10);
        assert!(svd.u.has_orthonormal_columns(1e-10));
    }

    #[test]
    fn u_is_orthonormal_and_captures_energy() {
        let a = rand_mat(12, 40, 3);
        let svd = leading_left_singular_vectors(&a, 12);
        assert!(svd.u.has_orthonormal_columns(1e-9));
        // Full set of singular values captures all the Frobenius energy.
        let energy: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        let fro2 = a.fro_norm().powi(2);
        assert!((energy - fro2).abs() < 1e-8 * fro2);
    }

    #[test]
    fn truncation_gives_best_rank_k_left_subspace() {
        // Build a matrix with a known dominant direction.
        let m = 10;
        let u0: Vec<f64> = (0..m).map(|i| ((i + 1) as f64).sin()).collect();
        let norm = u0.iter().map(|x| x * x).sum::<f64>().sqrt();
        let u0: Vec<f64> = u0.iter().map(|x| x / norm).collect();
        // A = 100 * u0 * v0ᵀ + small noise
        let mut a = rand_mat(m, 25, 4);
        a.scale(0.01);
        for j in 0..25 {
            let vj = ((j * 7 + 1) as f64).cos();
            for i in 0..m {
                a[(i, j)] += 100.0 * u0[i] * vj;
            }
        }
        let svd = leading_left_singular_vectors(&a, 1);
        // Leading left vector aligned with u0 up to sign.
        let dot: f64 = svd.u.col(0).iter().zip(&u0).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.999, "dominant direction not recovered: {dot}");
    }

    #[test]
    fn matches_gram_eigenvalues() {
        let a = rand_mat(8, 15, 5);
        let gram = syrk(&a);
        let svd1 = leading_left_singular_vectors(&a, 5);
        let svd2 = leading_from_gram(&gram, 5);
        for (s1, s2) in svd1.singular_values.iter().zip(&svd2.singular_values) {
            assert!((s1 - s2).abs() < 1e-10);
        }
        assert!(svd1.u.max_abs_diff(&svd2.u) < 1e-8);
    }

    #[test]
    fn left_vectors_diagonalize() {
        // uᵀ A Aᵀ u must be diag(σ²).
        let a = rand_mat(9, 20, 6);
        let svd = leading_left_singular_vectors(&a, 9);
        let gram = syrk(&a);
        let ug = gemm(&svd.u, Transpose::Yes, &gram, Transpose::No, 1.0);
        let ugu = gemm(&ug, Transpose::No, &svd.u, Transpose::No, 1.0);
        for i in 0..9 {
            for j in 0..9 {
                let expect = if i == j {
                    svd.singular_values[i].powi(2)
                } else {
                    0.0
                };
                assert!((ugu[(i, j)] - expect).abs() < 1e-7, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn clamps_negative_roundoff_eigenvalues() {
        // Rank-1 Gram: trailing eigenvalues may be tiny negatives.
        let x = [1.0, 1e-9, -1e-9];
        let g = Matrix::from_fn(3, 3, |i, j| x[i] * x[j]);
        let svd = leading_from_gram(&g, 3);
        assert!(svd
            .singular_values
            .iter()
            .all(|s| s.is_finite() && *s >= 0.0));
    }
}
