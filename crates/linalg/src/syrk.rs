//! Symmetric rank-k update: the workspace's `dsyrk` replacement.
//!
//! The paper's SVD step computes Gram matrices `G = Z(n) · Z(n)ᵀ` and notes
//! that the symmetry should be exploited (§5, "dysrk calls which exploits the
//! symmetry in the product"). We compute only the lower triangle and mirror.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// `C = A · Aᵀ` for column-major `A` (`m x k`), allocating the `m x m` output.
pub fn syrk(a: &Matrix) -> Matrix {
    let m = a.nrows();
    let mut c = Matrix::zeros(m, m);
    syrk_into(a, 1.0, 0.0, &mut c);
    c
}

/// `C = alpha * A·Aᵀ + beta * C`, computing only the lower triangle and
/// mirroring into the upper triangle afterwards.
///
/// # Panics
/// Panics if `C` is not `m x m` for `A` of shape `m x k`.
pub fn syrk_into(a: &Matrix, alpha: f64, beta: f64, c: &mut Matrix) {
    let (m, k) = a.shape();
    assert_eq!(c.shape(), (m, m), "syrk output must be {m}x{m}");

    if beta == 0.0 {
        c.as_mut_slice().fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if m == 0 {
        return;
    }

    // Accumulate column-by-column of A: C += alpha * a_l * a_lᵀ, lower only.
    // Parallelize over output columns (each task owns full output columns, so
    // no write conflicts).
    let a_buf = a.as_slice();
    let c_buf = c.as_mut_slice();
    let work = m * m * k;
    let do_col = |(j, cj): (usize, &mut [f64])| {
        for l in 0..k {
            let al = &a_buf[l * m..(l + 1) * m];
            let alj = alpha * al[j];
            if alj == 0.0 {
                continue;
            }
            // Only rows i >= j (lower triangle).
            for (cv, av) in cj[j..].iter_mut().zip(&al[j..]) {
                *cv += alj * av;
            }
        }
    };
    if work >= (1 << 16) && m >= 8 {
        c_buf.par_chunks_mut(m).enumerate().for_each(do_col);
    } else {
        c_buf.chunks_mut(m).enumerate().for_each(do_col);
    }

    // Mirror lower triangle into upper.
    for j in 0..m {
        for i in (j + 1)..m {
            let v = c[(i, j)];
            c[(j, i)] = v;
        }
    }
}

/// Symmetrize a nearly-symmetric matrix in place: `C <- (C + Cᵀ)/2`.
///
/// Used after all-reducing Gram contributions, where floating-point
/// non-associativity across ranks can introduce tiny asymmetries.
pub fn symmetrize(c: &mut Matrix) {
    let (m, n) = c.shape();
    assert_eq!(m, n, "symmetrize needs a square matrix");
    for j in 0..n {
        for i in (j + 1)..n {
            let v = 0.5 * (c[(i, j)] + c[(j, i)]);
            c[(i, j)] = v;
            c[(j, i)] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        Matrix::random(r, c, &dist, &mut rng)
    }

    #[test]
    fn matches_gemm_aat() {
        for (m, k, seed) in [(5, 7, 1u64), (16, 3, 2), (33, 40, 3)] {
            let a = rand_mat(m, k, seed);
            let c = syrk(&a);
            let r = gemm(&a, Transpose::No, &a, Transpose::Yes, 1.0);
            assert!(c.max_abs_diff(&r) < 1e-11, "m={m} k={k}");
        }
    }

    #[test]
    fn output_is_exactly_symmetric() {
        let a = rand_mat(20, 9, 7);
        let c = syrk(&a);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
    }

    #[test]
    fn accumulation_with_beta() {
        let a = rand_mat(6, 4, 9);
        let mut c = syrk(&a);
        // C = 1*A Aᵀ + 1*C = 2 A Aᵀ
        syrk_into(&a, 1.0, 1.0, &mut c);
        let mut r = gemm(&a, Transpose::No, &a, Transpose::Yes, 1.0);
        r.scale(2.0);
        assert!(c.max_abs_diff(&r) < 1e-11);
    }

    #[test]
    fn symmetrize_fixes_asymmetry() {
        let mut c = Matrix::from_rows(&[&[1.0, 2.0], &[2.2, 3.0]]);
        symmetrize(&mut c);
        assert_eq!(c[(0, 1)], c[(1, 0)]);
        assert!((c[(0, 1)] - 2.1).abs() < 1e-15);
    }

    #[test]
    fn zero_columns_gives_zero_gram() {
        let a = Matrix::zeros(4, 0);
        let c = syrk(&a);
        assert_eq!(c.shape(), (4, 4));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
}
