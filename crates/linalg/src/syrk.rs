//! Symmetric rank-k update: the workspace's `dsyrk` replacement.
//!
//! The paper's SVD step computes Gram matrices `G = Z(n) · Z(n)ᵀ` and notes
//! that the symmetry should be exploited (§5, "dysrk calls which exploits the
//! symmetry in the product"). We compute only the lower triangle and mirror.
//!
//! Two families of entry points live here:
//!
//! * [`syrk`] / [`syrk_into`] — `C = α·A·Aᵀ + β·C` on owned [`Matrix`]
//!   operands (the classic `dsyrk` shape);
//! * [`syrk_ata_lower`] — an accumulating `C += AᵀA` rank-k update on raw
//!   column-major slices, restricted to a row range. This is the building
//!   block of the fused Gram kernel in `tucker-tensor`: each contiguous slab
//!   of the canonical tensor layout is one such contribution, so no unfolding
//!   is ever materialized.
//!
//! Like [`crate::gemm`], every entry point picks between two kernels at
//! runtime: the packed, register-tiled triangle-aware macro-loop from
//! [`crate::pack`] (only lower-panel tiles are packed and computed; tiles
//! straddling the diagonal store under an `i ≥ j` mask) once the problem
//! amortizes packing, and the original unrolled dot/axpy loops below the
//! threshold or when `KernelMode::Naive` pins the baseline. Both kernels
//! honor the same contract: **only the lower triangle is written**.

use crate::matrix::Matrix;
use crate::pack;
use rayon::prelude::*;

/// `C = A · Aᵀ` for column-major `A` (`m x k`), allocating the `m x m` output.
pub fn syrk(a: &Matrix) -> Matrix {
    let m = a.nrows();
    let mut c = Matrix::zeros(m, m);
    syrk_into(a, 1.0, 0.0, &mut c);
    c
}

/// `C = alpha * A·Aᵀ + beta * C`, computing only the lower triangle and
/// mirroring into the upper triangle afterwards.
///
/// # Panics
/// Panics if `C` is not `m x m` for `A` of shape `m x k`.
pub fn syrk_into(a: &Matrix, alpha: f64, beta: f64, c: &mut Matrix) {
    let (m, k) = a.shape();
    assert_eq!(c.shape(), (m, m), "syrk output must be {m}x{m}");

    if beta == 0.0 {
        c.as_mut_slice().fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if m == 0 {
        return;
    }

    if pack::use_packed(m, m, k) {
        // A·Aᵀ on the packed triangle-aware kernel: operand strides (1, m),
        // lower triangle only, mirrored below like the naive path.
        pack::with_thread_packs(|p| {
            pack::syrk_packed_lower(m, k, a.as_slice(), 1, m, alpha, c.as_mut_slice(), p);
        });
        mirror_lower(c.as_mut_slice(), m);
        return;
    }

    // Accumulate column-by-column of A: C += alpha * a_l * a_lᵀ, lower only.
    // Parallelize over output columns (each task owns full output columns, so
    // no write conflicts).
    let a_buf = a.as_slice();
    let c_buf = c.as_mut_slice();
    let work = m * m * k;
    let do_col = |(j, cj): (usize, &mut [f64])| {
        for l in 0..k {
            let al = &a_buf[l * m..(l + 1) * m];
            let alj = alpha * al[j];
            if alj == 0.0 {
                continue;
            }
            // Only rows i >= j (lower triangle).
            for (cv, av) in cj[j..].iter_mut().zip(&al[j..]) {
                *cv += alj * av;
            }
        }
    };
    if work >= (1 << 16) && m >= 8 {
        c_buf.par_chunks_mut(m).enumerate().for_each(do_col);
    } else {
        c_buf.chunks_mut(m).enumerate().for_each(do_col);
    }

    mirror_lower(c.as_mut_slice(), m);
}

/// Accumulating lower-triangle `AᵀA` update on raw column-major storage:
/// `C[l₁, l₂] += Σ_{r0 ≤ r < r1} A[r, l₁] · A[r, l₂]` for every `l₂ ≤ l₁`.
///
/// `a` holds `n` columns with leading dimension `lda` (only rows `r0..r1`
/// are read); `c` is a column-major `n × n` buffer of which only the lower
/// triangle is written. Callers sum any number of such contributions and
/// mirror once at the end with [`mirror_lower`].
///
/// Each inner product runs over a *contiguous* slice of `a`, which is what
/// makes this the right primitive for Gram matrices computed slab-by-slab
/// from the canonical tensor layout.
///
/// # Panics
/// Debug-panics if the row range or buffer lengths are inconsistent.
pub fn syrk_ata_lower(a: &[f64], lda: usize, n: usize, r0: usize, r1: usize, c: &mut [f64]) {
    debug_assert!(
        r0 <= r1 && r1 <= lda,
        "row range {r0}..{r1} exceeds lda {lda}"
    );
    debug_assert!(n == 0 || a.len() >= (n - 1) * lda + r1, "operand too short");
    debug_assert_eq!(c.len(), n * n, "output must be {n}x{n}");
    if r0 == r1 {
        return;
    }
    if pack::use_packed(n, n, r1 - r0) {
        // The operand is Sᵀ for S = rows r0..r1 of the slab: element (l1, l)
        // of the n×(r1-r0) strided view sits at a[r0 + l + l1·lda].
        pack::with_thread_packs(|p| {
            pack::syrk_packed_lower(n, r1 - r0, &a[r0..], lda, 1, 1.0, c, p);
        });
        return;
    }
    for (l2, cc) in c.chunks_mut(n).enumerate() {
        let y = &a[l2 * lda + r0..l2 * lda + r1];
        for (cv, x_col) in cc[l2..].iter_mut().zip(a[l2 * lda..].chunks(lda)) {
            *cv += unrolled_dot(&x_col[r0..r1], y);
        }
    }
}

/// Dot product with eight independent partial sums: breaking the
/// floating-point reduction chain lets the backend keep the FMA pipeline
/// full (a single-accumulator loop serializes on the add latency). Shared by
/// the `AᵀA` update above and the contiguous-fiber kernels in
/// `tucker-tensor`.
///
/// # Panics
/// Debug-panics if the slices differ in length.
#[inline]
pub fn unrolled_dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    const LANES: usize = 8;
    let mut acc = [0.0f64; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        for l in 0..LANES {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut s = 0.0;
    for (xv, yv) in xc.remainder().iter().zip(yc.remainder()) {
        s += xv * yv;
    }
    s + ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Strided twin of [`unrolled_dot`]: `Σ_i x[i·sx] · y[i·sy]` over `len`
/// terms with the **same** eight-lane accumulation structure (lane `i % 8`
/// for the unrolled body, a sequential tail for the last `len % 8` terms,
/// identical final reduction), so for equal operand values the result is
/// bit-identical to [`unrolled_dot`]. This is what lets the view-native
/// kernels in `tucker-tensor` run over non-contiguous fibers at 0 ulp from
/// the contiguous path.
///
/// # Panics
/// Debug-panics if either slice is too short for `len` strided reads.
#[inline]
pub fn unrolled_dot_strided(x: &[f64], sx: usize, y: &[f64], sy: usize, len: usize) -> f64 {
    debug_assert!(len == 0 || (len - 1) * sx < x.len(), "x too short");
    debug_assert!(len == 0 || (len - 1) * sy < y.len(), "y too short");
    const LANES: usize = 8;
    let main = len - len % LANES;
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i < main {
        for l in 0..LANES {
            acc[l] += x[(i + l) * sx] * y[(i + l) * sy];
        }
        i += LANES;
    }
    let mut s = 0.0;
    for i in main..len {
        s += x[i * sx] * y[i * sy];
    }
    s + ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Accumulating lower-triangle `A·Aᵀ` update over a contiguous **column**
/// range of a column-major `m × k` matrix given as a raw slice:
/// `C[i, j] += Σ_{c0 ≤ l < c1} A[i, l] · A[j, l]` for every `j ≤ i`.
///
/// This is the rank-1-per-column (axpy) formulation of the Gram update —
/// the right shape when the vectors are contiguous columns, e.g. mode-0
/// fibers in the canonical tensor layout (where the unfolding is the raw
/// buffer itself). Pair with [`mirror_lower`] once all contributions are in.
///
/// # Panics
/// Debug-panics if the column range or buffer lengths are inconsistent.
pub fn syrk_aat_lower(a: &[f64], m: usize, c0: usize, c1: usize, c: &mut [f64]) {
    debug_assert!(c0 <= c1 && c1 * m <= a.len(), "column range out of bounds");
    debug_assert_eq!(c.len(), m * m, "output must be {m}x{m}");
    if pack::use_packed(m, m, c1 - c0) {
        // Columns c0..c1 as an m×(c1-c0) contiguous operand: strides (1, m).
        pack::with_thread_packs(|p| {
            pack::syrk_packed_lower(m, c1 - c0, &a[c0 * m..], 1, m, 1.0, c, p);
        });
        return;
    }
    for col in a[c0 * m..c1 * m].chunks_exact(m) {
        for (j, &v) in col.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let cj = &mut c[j * m..(j + 1) * m];
            for (cv, av) in cj[j..].iter_mut().zip(&col[j..]) {
                *cv += v * av;
            }
        }
    }
}

/// Copy the lower triangle of a column-major `n × n` buffer into the upper
/// triangle, making it exactly symmetric.
pub fn mirror_lower(c: &mut [f64], n: usize) {
    debug_assert_eq!(c.len(), n * n);
    for j in 0..n {
        for i in (j + 1)..n {
            c[i * n + j] = c[j * n + i];
        }
    }
}

/// Symmetrize a nearly-symmetric matrix in place: `C <- (C + Cᵀ)/2`.
///
/// Used after all-reducing Gram contributions, where floating-point
/// non-associativity across ranks can introduce tiny asymmetries.
pub fn symmetrize(c: &mut Matrix) {
    let (m, n) = c.shape();
    assert_eq!(m, n, "symmetrize needs a square matrix");
    for j in 0..n {
        for i in (j + 1)..n {
            let v = 0.5 * (c[(i, j)] + c[(j, i)]);
            c[(i, j)] = v;
            c[(j, i)] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        Matrix::random(r, c, &dist, &mut rng)
    }

    #[test]
    fn matches_gemm_aat() {
        for (m, k, seed) in [(5, 7, 1u64), (16, 3, 2), (33, 40, 3)] {
            let a = rand_mat(m, k, seed);
            let c = syrk(&a);
            let r = gemm(&a, Transpose::No, &a, Transpose::Yes, 1.0);
            assert!(c.max_abs_diff(&r) < 1e-11, "m={m} k={k}");
        }
    }

    #[test]
    fn output_is_exactly_symmetric() {
        let a = rand_mat(20, 9, 7);
        let c = syrk(&a);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
    }

    #[test]
    fn accumulation_with_beta() {
        let a = rand_mat(6, 4, 9);
        let mut c = syrk(&a);
        // C = 1*A Aᵀ + 1*C = 2 A Aᵀ
        syrk_into(&a, 1.0, 1.0, &mut c);
        let mut r = gemm(&a, Transpose::No, &a, Transpose::Yes, 1.0);
        r.scale(2.0);
        assert!(c.max_abs_diff(&r) < 1e-11);
    }

    #[test]
    fn symmetrize_fixes_asymmetry() {
        let mut c = Matrix::from_rows(&[&[1.0, 2.0], &[2.2, 3.0]]);
        symmetrize(&mut c);
        assert_eq!(c[(0, 1)], c[(1, 0)]);
        assert!((c[(0, 1)] - 2.1).abs() < 1e-15);
    }

    #[test]
    fn zero_columns_gives_zero_gram() {
        let a = Matrix::zeros(4, 0);
        let c = syrk(&a);
        assert_eq!(c.shape(), (4, 4));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ata_lower_matches_gemm() {
        let a = rand_mat(9, 5, 11);
        let mut c = vec![0.0; 25];
        syrk_ata_lower(a.as_slice(), 9, 5, 0, 9, &mut c);
        mirror_lower(&mut c, 5);
        let got = Matrix::from_vec(5, 5, c);
        let want = gemm(&a, Transpose::Yes, &a, Transpose::No, 1.0);
        assert!(got.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn ata_lower_row_ranges_accumulate() {
        // Splitting the row range in two and summing must equal one pass.
        let a = rand_mat(10, 4, 12);
        let mut whole = vec![0.0; 16];
        syrk_ata_lower(a.as_slice(), 10, 4, 0, 10, &mut whole);
        let mut split = vec![0.0; 16];
        syrk_ata_lower(a.as_slice(), 10, 4, 0, 3, &mut split);
        syrk_ata_lower(a.as_slice(), 10, 4, 3, 10, &mut split);
        for (w, s) in whole.iter().zip(&split) {
            assert!((w - s).abs() < 1e-13);
        }
        // Empty range is a no-op.
        let before = split.clone();
        syrk_ata_lower(a.as_slice(), 10, 4, 7, 7, &mut split);
        assert_eq!(split, before);
    }

    #[test]
    fn strided_dot_is_bit_identical_to_unrolled() {
        let x = rand_mat(1, 40, 21);
        let y = rand_mat(1, 40, 22);
        for len in [0, 1, 7, 8, 9, 16, 23, 40] {
            let want = unrolled_dot(&x.as_slice()[..len], &y.as_slice()[..len]);
            let got = unrolled_dot_strided(x.as_slice(), 1, y.as_slice(), 1, len);
            assert_eq!(want.to_bits(), got.to_bits(), "len={len}");
        }
        // Strided gather of every 3rd element equals the dense dot of the
        // gathered values, bitwise.
        let xs: Vec<f64> = x.as_slice().iter().step_by(3).copied().collect();
        let ys: Vec<f64> = y.as_slice().iter().step_by(3).copied().collect();
        let want = unrolled_dot(&xs, &ys);
        let got = unrolled_dot_strided(x.as_slice(), 3, y.as_slice(), 3, xs.len());
        assert_eq!(want.to_bits(), got.to_bits());
    }

    #[test]
    fn mirror_lower_symmetrizes_exactly() {
        // Column-major 3x3 with garbage in the upper triangle.
        let mut c = vec![1.0, 2.0, 3.0, 9.0, 4.0, 5.0, 9.0, 9.0, 6.0];
        mirror_lower(&mut c, 3);
        let m = Matrix::from_vec(3, 3, c);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], m[(j, i)]);
            }
        }
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 2)], 5.0);
    }
}
