//! Packed, register-tiled micro-kernel layer: the BLAS-3 floor under
//! [`gemm`](crate::gemm), [`syrk`](crate::syrk), and the tensor kernels.
//!
//! The classic cache-blocked GEMM loop nest (Goto/BLIS) is implemented here
//! once and shared by every dense kernel in the workspace:
//!
//! * the innermost unit is an [`MR`]`×`[`NR`] **micro-kernel** whose
//!   accumulator tile lives entirely in registers (`[[f64; MR]; NR]` — small
//!   enough that the autovectorizer keeps it resident);
//! * operands are staged through **pack buffers** ([`PackBuf`]): `A` blocks
//!   become `MR`-row panels, `B` blocks become `NR`-column panels, both
//!   zero-padded to full tiles and 64-byte aligned, so the micro-kernel
//!   streams two contiguous panels regardless of the source strides;
//! * the macro loops block by [`KC`] (shared dimension, one packed `B` block
//!   per step), [`MC`] (rows of `A` resident in L2), and [`NC`] (columns of
//!   `B` per outermost step).
//!
//! Because packing costs `O(mk + kn)` against `O(mnk)` compute, the packed
//! path only wins once the operands amortize it; [`use_packed`] is the
//! one-shot runtime pick (`m·n·k` against a fixed threshold), overridable
//! process-wide via [`set_kernel_mode`] so benches and differential tests can
//! pin either path. Pack buffers are reused: sequential entry points stage
//! through a thread-local [`PackPair`] (take-and-put-back, so re-entrant use
//! degrades to a fresh pair instead of panicking), and `TtmWorkspace` in
//! `tucker-tensor` pools its own pair so steady-state sweeps stay
//! allocation-free. [`bytes_packed`] counts the bytes staged through pack
//! buffers **on the calling thread** (scoped worker threads are fresh per
//! parallel region and their packing is not folded back) — the sweep
//! executor snapshots it around each sweep to report kernel traffic.
//!
//! Strided operands are described by `(slice, rs, cs)` with element `(i, j)`
//! at `slice[i·rs + j·cs]` — a plain column-major matrix is `(buf, 1, ld)`
//! and its transpose is `(buf, ld, 1)`, so no transposed copies are ever
//! materialized.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Micro-kernel tile rows (rows of `C` per register tile).
pub const MR: usize = 8;
/// Micro-kernel tile columns (columns of `C` per register tile).
pub const NR: usize = 4;
/// Shared-dimension block: one packed `B` block spans `KC` of `k`.
pub const KC: usize = 256;
/// Row block: `MC × KC` of packed `A` is sized to stay L2-resident.
pub const MC: usize = 96;
/// Column block: columns of `B` per outermost loop step.
pub const NC: usize = 2048;

/// `m·n·k` below which packing costs more than it saves (measured on the
/// bench shapes; tiny operands stay on the unrolled naive paths).
const PACK_MIN_WORK: usize = 1 << 14;

/// Pack-buffer alignment in bytes (one cache line / AVX-512 vector).
const ALIGN_BYTES: usize = 64;
const ALIGN_F64: usize = ALIGN_BYTES / std::mem::size_of::<f64>();

/// Which kernel implementation the dense entry points select.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// Pick per call: packed above the work threshold, naive below.
    Auto,
    /// Force the unrolled naive paths (bench baselines, differential tests).
    Naive,
    /// Force the packed paths even for tiny operands.
    Packed,
}

/// Process-wide kernel-mode override; `0 = Auto, 1 = Naive, 2 = Packed`.
/// Like `tucker_tensor::threads`, racy-by-design: meant for test setup and
/// bench harnesses, not concurrent reconfiguration.
static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// The current process-wide [`KernelMode`].
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Naive,
        2 => KernelMode::Packed,
        _ => KernelMode::Auto,
    }
}

/// Set the process-wide [`KernelMode`] (see [`kernel_mode`]).
pub fn set_kernel_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Auto => 0,
        KernelMode::Naive => 1,
        KernelMode::Packed => 2,
    };
    KERNEL_MODE.store(v, Ordering::Relaxed);
}

/// The one-shot runtime pick: should an `m×n×k` contraction take the packed
/// path? Degenerate (empty) problems always say no.
#[inline]
pub fn use_packed(m: usize, n: usize, k: usize) -> bool {
    if m == 0 || n == 0 || k == 0 {
        return false;
    }
    match kernel_mode() {
        KernelMode::Naive => false,
        KernelMode::Packed => true,
        KernelMode::Auto => m.saturating_mul(n).saturating_mul(k) >= PACK_MIN_WORK,
    }
}

thread_local! {
    /// Bytes staged through pack buffers on this thread (see [`bytes_packed`]).
    static BYTES_PACKED: Cell<u64> = const { Cell::new(0) };
}

/// Monotone per-thread count of bytes copied into pack buffers. The sweep
/// executor reports the delta across a sweep as `SweepStats::kernel_bytes`.
pub fn bytes_packed() -> u64 {
    BYTES_PACKED.with(|c| c.get())
}

#[inline]
fn note_packed(f64s: usize) {
    BYTES_PACKED.with(|c| c.set(c.get() + (f64s * std::mem::size_of::<f64>()) as u64));
}

/// A grow-only, 64-byte-aligned scratch buffer for packed operand panels.
///
/// `Vec<f64>` only guarantees 8-byte alignment, so the buffer over-allocates
/// by one alignment unit and serves slices from an aligned offset. Growth is
/// explicit: [`ensure`](PackBuf::ensure) returns whether the backing
/// allocation grew, so pooling callers (the tensor workspace) can fold pack
/// growth into their allocation counters.
#[derive(Default)]
pub struct PackBuf {
    buf: Vec<f64>,
    off: usize,
}

impl PackBuf {
    /// An empty buffer; allocates nothing until the first [`ensure`](PackBuf::ensure).
    pub const fn new() -> Self {
        PackBuf {
            buf: Vec::new(),
            off: 0,
        }
    }

    /// Make room for `len` packed values, returning `true` if the backing
    /// allocation grew (capacity is kept otherwise — grow-only).
    pub fn ensure(&mut self, len: usize) -> bool {
        if len == 0 {
            return false;
        }
        let need = len + ALIGN_F64;
        if self.buf.len() >= need {
            return false;
        }
        self.buf.resize(need, 0.0);
        let o = self.buf.as_ptr().align_offset(ALIGN_BYTES);
        self.off = if o >= ALIGN_F64 { 0 } else { o };
        true
    }

    /// Bytes held by the backing allocation.
    pub fn allocated_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<f64>()
    }

    /// The first `len` packed values (after [`ensure`](PackBuf::ensure)).
    #[inline]
    pub fn slice(&self, len: usize) -> &[f64] {
        &self.buf[self.off..self.off + len]
    }

    /// Mutable view of the first `len` packed values.
    #[inline]
    pub fn slice_mut(&mut self, len: usize) -> &mut [f64] {
        &mut self.buf[self.off..self.off + len]
    }
}

/// The `A`/`B` pack-buffer pair one GEMM-shaped contraction needs.
#[derive(Default)]
pub struct PackPair {
    /// Panels of the left (`MR`-row-tiled) operand.
    pub a: PackBuf,
    /// Panels of the right (`NR`-column-tiled) operand.
    pub b: PackBuf,
}

impl PackPair {
    /// An empty pair; allocates nothing until first use.
    pub const fn new() -> Self {
        PackPair {
            a: PackBuf::new(),
            b: PackBuf::new(),
        }
    }

    /// Bytes held by both backing allocations.
    pub fn allocated_bytes(&self) -> usize {
        self.a.allocated_bytes() + self.b.allocated_bytes()
    }
}

thread_local! {
    static TL_PACKS: Cell<PackPair> = const { Cell::new(PackPair::new()) };
}

/// Run `f` with this thread's reusable [`PackPair`].
///
/// The pair is *taken* out of the slot and put back afterwards, so a
/// re-entrant call (a parallel region whose single worker is the calling
/// thread) sees a fresh empty pair instead of a `RefCell` panic; the inner
/// pair is simply dropped when the outer call restores its own.
pub fn with_thread_packs<R>(f: impl FnOnce(&mut PackPair) -> R) -> R {
    TL_PACKS.with(|cell| {
        let mut packs = cell.take();
        let r = f(&mut packs);
        cell.set(packs);
        r
    })
}

/// Packed length of an `mb`-row block tiled into `MR`-row panels of depth `kb`.
#[inline]
pub fn packed_a_len(mb: usize, kb: usize) -> usize {
    mb.div_ceil(MR) * MR * kb
}

/// Packed length of an `nb`-column block tiled into `NR`-column panels.
#[inline]
pub fn packed_b_len(kb: usize, nb: usize) -> usize {
    nb.div_ceil(NR) * NR * kb
}

/// Pack rows `i0..i0+mb`, depth `l0..l0+kb` of the strided operand `A`
/// (element `(i, l)` at `a[i·rs + l·cs]`) into `MR`-row zero-padded panels:
/// panel `p` holds rows `i0 + p·MR ..`, element `(i, l)` at `l·MR + i`.
#[allow(clippy::too_many_arguments)]
pub fn pack_a_block(
    dst: &mut [f64],
    a: &[f64],
    rs: usize,
    cs: usize,
    i0: usize,
    mb: usize,
    l0: usize,
    kb: usize,
) {
    debug_assert_eq!(dst.len(), packed_a_len(mb, kb));
    for (p, panel) in dst.chunks_exact_mut(MR * kb).enumerate() {
        let pi = i0 + p * MR;
        let pm = MR.min(i0 + mb - pi);
        if pm == MR && rs == 1 {
            // Contiguous column fragments: straight 8-wide copies.
            for (l, col) in panel.chunks_exact_mut(MR).enumerate() {
                col.copy_from_slice(&a[pi + (l0 + l) * cs..][..MR]);
            }
        } else {
            for (l, col) in panel.chunks_exact_mut(MR).enumerate() {
                for (i, v) in col.iter_mut().enumerate() {
                    *v = if i < pm {
                        a[(pi + i) * rs + (l0 + l) * cs]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
    note_packed(dst.len());
}

/// Pack depth `l0..l0+kb`, columns `j0..j0+nb` of the strided operand `B`
/// (element `(l, j)` at `b[l·rs + j·cs]`) into `NR`-column zero-padded
/// panels: panel `p` holds columns `j0 + p·NR ..`, element `(l, j)` at
/// `l·NR + j`.
#[allow(clippy::too_many_arguments)]
pub fn pack_b_block(
    dst: &mut [f64],
    b: &[f64],
    rs: usize,
    cs: usize,
    l0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
) {
    debug_assert_eq!(dst.len(), packed_b_len(kb, nb));
    for (p, panel) in dst.chunks_exact_mut(NR * kb).enumerate() {
        let pj = j0 + p * NR;
        let pn = NR.min(j0 + nb - pj);
        for (l, row) in panel.chunks_exact_mut(NR).enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = if j < pn {
                    b[(l0 + l) * rs + (pj + j) * cs]
                } else {
                    0.0
                };
            }
        }
    }
    note_packed(dst.len());
}

/// Total packed length of the full `k×n` operand `B` under the macro-loop
/// block decomposition (the layout [`pack_b_full`] produces and
/// [`gemm_prepacked_b`] consumes).
pub fn packed_b_full_len(k: usize, n: usize) -> usize {
    let mut len = 0;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            len += packed_b_len(kc, nc);
        }
    }
    len
}

/// Pack the **entire** `k×n` strided operand `B` block-by-block in macro-loop
/// order, so [`gemm_prepacked_b`] can replay the same decomposition without
/// repacking. This is how the TTM kernel packs a factor matrix once and
/// reuses it across every outer slab.
pub fn pack_b_full(dst: &mut [f64], k: usize, n: usize, b: &[f64], rs: usize, cs: usize) {
    debug_assert_eq!(dst.len(), packed_b_full_len(k, n));
    let mut off = 0;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let len = packed_b_len(kc, nc);
            pack_b_block(&mut dst[off..off + len], b, rs, cs, pc, kc, jc, nc);
            off += len;
        }
    }
}

/// The register-tiled inner product: `acc[j][i] = Σ_l ap[l·MR+i] · bp[l·NR+j]`
/// over one `A` panel and one `B` panel of depth `kc`.
#[inline(always)]
fn mk_accumulate(ap: &[f64], bp: &[f64]) -> [[f64; MR]; NR] {
    let mut acc = [[0.0f64; MR]; NR];
    for (a8, b4) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for j in 0..NR {
            let bj = b4[j];
            for i in 0..MR {
                acc[j][i] += a8[i] * bj;
            }
        }
    }
    acc
}

/// Scale-and-add a micro-tile into `C` (`c` points at the tile origin,
/// element `(i, j)` at `c[i + j·ldc]`); edge tiles store the `mr×nr` live
/// corner only.
#[inline(always)]
fn mk_store(acc: &[[f64; MR]; NR], alpha: f64, c: &mut [f64], ldc: usize, mr: usize, nr: usize) {
    if mr == MR && nr == NR {
        for (j, aj) in acc.iter().enumerate() {
            let cj = &mut c[j * ldc..j * ldc + MR];
            for i in 0..MR {
                cj[i] += alpha * aj[i];
            }
        }
    } else {
        for (j, aj) in acc.iter().enumerate().take(nr) {
            for (i, &v) in aj.iter().enumerate().take(mr) {
                c[i + j * ldc] += alpha * v;
            }
        }
    }
}

/// Macro-kernel over one packed `mc×kc` `A` block and `kc×nc` `B` block:
/// `C[..mc, ..nc] += alpha · A·B` with `c` at the block origin.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    apack: &[f64],
    bpack: &[f64],
    alpha: f64,
    c: &mut [f64],
    ldc: usize,
) {
    for jr in (0..nc).step_by(NR) {
        let nr = NR.min(nc - jr);
        let bp = &bpack[(jr / NR) * NR * kc..][..NR * kc];
        for ir in (0..mc).step_by(MR) {
            let mr = MR.min(mc - ir);
            let ap = &apack[(ir / MR) * MR * kc..][..MR * kc];
            let acc = mk_accumulate(ap, bp);
            mk_store(&acc, alpha, &mut c[ir + jr * ldc..], ldc, mr, nr);
        }
    }
}

/// Ensure `packs` covers one `A` block and one `B` block of this problem,
/// returning whether either backing allocation grew.
fn ensure_packs(m: usize, n: usize, k: usize, packs: &mut PackPair) -> bool {
    let ga = packs.a.ensure(packed_a_len(m.min(MC), k.min(KC)));
    let gb = packs.b.ensure(packed_b_len(k.min(KC), n.min(NC)));
    ga || gb
}

/// Packed strided GEMM: `C[m×n] += alpha · A[m×k] · B[k×n]` where `A`/`B`
/// are strided operands (element `(i, j)` at `x[i·rs + j·cs]`) and `C` is
/// column-major with leading dimension `ldc`.
///
/// Returns `true` if a pack buffer had to grow (for allocation accounting).
/// Strictly sequential; callers split `C` by column ranges for parallelism.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    a_rs: usize,
    a_cs: usize,
    b: &[f64],
    b_rs: usize,
    b_cs: usize,
    alpha: f64,
    c: &mut [f64],
    ldc: usize,
    packs: &mut PackPair,
) -> bool {
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return false;
    }
    let grew = ensure_packs(m, n, k, packs);
    let (pa, pb) = (&mut packs.a, &mut packs.b);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let bp_len = packed_b_len(kc, nc);
            pack_b_block(pb.slice_mut(bp_len), b, b_rs, b_cs, pc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let ap_len = packed_a_len(mc, kc);
                pack_a_block(pa.slice_mut(ap_len), a, a_rs, a_cs, ic, mc, pc, kc);
                macro_kernel(
                    mc,
                    nc,
                    kc,
                    pa.slice(ap_len),
                    pb.slice(bp_len),
                    alpha,
                    &mut c[ic + jc * ldc..],
                    ldc,
                );
            }
        }
    }
    grew
}

/// [`gemm_packed`] against a `B` operand already packed by [`pack_b_full`]:
/// only `A` blocks are packed (into `apack`). This is the per-slab TTM call —
/// the factor pack is shared across all slabs and all workers.
#[allow(clippy::too_many_arguments)]
pub fn gemm_prepacked_b(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    a_rs: usize,
    a_cs: usize,
    bpack: &[f64],
    alpha: f64,
    c: &mut [f64],
    ldc: usize,
    apack: &mut PackBuf,
) -> bool {
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return false;
    }
    debug_assert_eq!(bpack.len(), packed_b_full_len(k, n));
    let grew = apack.ensure(packed_a_len(m.min(MC), k.min(KC)));
    let mut boff = 0;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let bp_len = packed_b_len(kc, nc);
            let bp = &bpack[boff..boff + bp_len];
            boff += bp_len;
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let ap_len = packed_a_len(mc, kc);
                pack_a_block(apack.slice_mut(ap_len), a, a_rs, a_cs, ic, mc, pc, kc);
                macro_kernel(
                    mc,
                    nc,
                    kc,
                    apack.slice(ap_len),
                    bp,
                    alpha,
                    &mut c[ic + jc * ldc..],
                    ldc,
                );
            }
        }
    }
    grew
}

/// Triangle-aware packed SYRK: `C[i, j] += alpha · Σ_l A[i, l] · A[j, l]`
/// for every `j ≤ i`, where `A` is the `n×k` strided operand and `C` is a
/// column-major `n×n` buffer of which **only the lower triangle is written**
/// (the upper triangle is never touched, matching the `syrk_*_lower`
/// contract).
///
/// The macro loop is the GEMM nest with `B = Aᵀ` (same slice, swapped
/// strides), skipping every tile strictly above the diagonal and masking the
/// store on diagonal-straddling tiles. Returns `true` if a pack buffer grew.
#[allow(clippy::too_many_arguments)]
pub fn syrk_packed_lower(
    n: usize,
    k: usize,
    a: &[f64],
    a_rs: usize,
    a_cs: usize,
    alpha: f64,
    c: &mut [f64],
    packs: &mut PackPair,
) -> bool {
    if n == 0 || k == 0 || alpha == 0.0 {
        return false;
    }
    debug_assert_eq!(c.len(), n * n);
    let grew = ensure_packs(n, n, k, packs);
    let (pa, pb) = (&mut packs.a, &mut packs.b);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let bp_len = packed_b_len(kc, nc);
            // B = Aᵀ: element (l, j) is A[j, l], i.e. swapped strides.
            pack_b_block(pb.slice_mut(bp_len), a, a_cs, a_rs, pc, kc, jc, nc);
            for ic in (0..n).step_by(MC) {
                let mc = MC.min(n - ic);
                if ic + mc <= jc {
                    continue; // whole block strictly above the diagonal
                }
                let ap_len = packed_a_len(mc, kc);
                pack_a_block(pa.slice_mut(ap_len), a, a_rs, a_cs, ic, mc, pc, kc);
                macro_kernel_lower(
                    mc,
                    nc,
                    kc,
                    pa.slice(ap_len),
                    pb.slice(bp_len),
                    alpha,
                    &mut c[ic + jc * n..],
                    n,
                    ic,
                    jc,
                );
            }
        }
    }
    grew
}

/// [`macro_kernel`] restricted to the lower triangle: tiles entirely above
/// the diagonal are skipped, tiles straddling it store element-by-element
/// under an `i ≥ j` (global indices) mask.
#[allow(clippy::too_many_arguments)]
fn macro_kernel_lower(
    mc: usize,
    nc: usize,
    kc: usize,
    apack: &[f64],
    bpack: &[f64],
    alpha: f64,
    c: &mut [f64],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    for jr in (0..nc).step_by(NR) {
        let nr = NR.min(nc - jr);
        let jg = jc + jr;
        let bp = &bpack[(jr / NR) * NR * kc..][..NR * kc];
        for ir in (0..mc).step_by(MR) {
            let mr = MR.min(mc - ir);
            let ig = ic + ir;
            if ig + mr <= jg {
                continue; // tile entirely above the diagonal
            }
            let acc = mk_accumulate(ap_slice(apack, ir, kc), bp);
            let tile = &mut c[ir + jr * ldc..];
            if ig >= jg + nr - 1 {
                mk_store(&acc, alpha, tile, ldc, mr, nr);
            } else {
                for (j, aj) in acc.iter().enumerate().take(nr) {
                    for (i, &v) in aj.iter().enumerate().take(mr) {
                        if ig + i >= jg + j {
                            tile[i + j * ldc] += alpha * v;
                        }
                    }
                }
            }
        }
    }
}

#[inline]
fn ap_slice(apack: &[f64], ir: usize, kc: usize) -> &[f64] {
    &apack[(ir / MR) * MR * kc..][..MR * kc]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(seed: u64, len: usize) -> Vec<f64> {
        // Cheap deterministic pseudo-noise; avoids pulling rand into the unit
        // tests of the lowest-level module.
        (0..len)
            .map(|i| {
                let x = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn naive_gemm(
        m: usize,
        n: usize,
        k: usize,
        a: &[f64],
        a_rs: usize,
        a_cs: usize,
        b: &[f64],
        b_rs: usize,
        b_cs: usize,
        alpha: f64,
    ) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for j in 0..n {
            for i in 0..m {
                let mut s = 0.0;
                for l in 0..k {
                    s += a[i * a_rs + l * a_cs] * b[l * b_rs + j * b_cs];
                }
                c[i + j * m] = alpha * s;
            }
        }
        c
    }

    #[test]
    fn packed_gemm_matches_naive_over_blocking_edges() {
        // Shapes straddling MR/NR/MC/KC boundaries, both stride layouts.
        for &(m, n, k) in &[
            (1, 1, 1),
            (7, 3, 5),
            (8, 4, 16),
            (9, 5, 17),
            (97, 41, 260),
            (MC + 3, NR + 1, KC + 2),
        ] {
            let a = det(1, m * k);
            let b = det(2, k * n);
            let want = naive_gemm(m, n, k, &a, 1, m, &b, 1, k, 1.5);
            let mut c = vec![0.0; m * n];
            let mut packs = PackPair::new();
            gemm_packed(m, n, k, &a, 1, m, &b, 1, k, 1.5, &mut c, m, &mut packs);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-12, "m={m} n={n} k={k}");
            }
            // Transposed-stride A (row-major view of the same buffer).
            let at = det(3, k * m); // k×m storage, used as m×k via strides
            let want = naive_gemm(m, n, k, &at, k, 1, &b, 1, k, 1.0);
            let mut c = vec![0.0; m * n];
            gemm_packed(m, n, k, &at, k, 1, &b, 1, k, 1.0, &mut c, m, &mut packs);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-12, "strided m={m} n={n} k={k}");
            }
        }
    }

    #[test]
    fn prepacked_b_matches_direct() {
        let (m, n, k) = (37, 11, 300); // two KC blocks
        let a = det(4, m * k);
        let b = det(5, k * n);
        let mut direct = vec![0.0; m * n];
        let mut packs = PackPair::new();
        gemm_packed(m, n, k, &a, 1, m, &b, 1, k, 1.0, &mut direct, m, &mut packs);
        let mut bpack = vec![0.0; packed_b_full_len(k, n)];
        pack_b_full(&mut bpack, k, n, &b, 1, k);
        let mut c = vec![0.0; m * n];
        let mut apack = PackBuf::new();
        gemm_prepacked_b(m, n, k, &a, 1, m, &bpack, 1.0, &mut c, m, &mut apack);
        assert_eq!(c, direct, "prepacked B must be bit-identical");
    }

    #[test]
    fn syrk_lower_touches_only_lower_triangle() {
        let (n, k) = (23, 40);
        let a = det(6, n * k); // n×k column-major: rs=1, cs=n
        let mut c = vec![f64::NAN; n * n];
        for j in 0..n {
            for i in j..n {
                c[i + j * n] = 0.0;
            }
        }
        let mut packs = PackPair::new();
        syrk_packed_lower(n, k, &a, 1, n, 1.0, &mut c, &mut packs);
        for j in 0..n {
            for i in 0..n {
                let v = c[i + j * n];
                if i >= j {
                    let want: f64 = (0..k).map(|l| a[i + l * n] * a[j + l * n]).sum();
                    assert!((v - want).abs() < 1e-12, "({i},{j})");
                } else {
                    assert!(v.is_nan(), "upper ({i},{j}) must be untouched");
                }
            }
        }
    }

    #[test]
    fn pack_buffers_are_aligned_and_grow_only() {
        let mut p = PackBuf::new();
        assert!(!p.ensure(0));
        assert!(p.ensure(100));
        assert_eq!(p.slice(100).as_ptr() as usize % ALIGN_BYTES, 0);
        assert!(!p.ensure(50), "smaller request must not grow");
        assert!(!p.ensure(100), "equal request must not grow");
        assert!(p.ensure(10_000));
        assert_eq!(p.slice(10_000).as_ptr() as usize % ALIGN_BYTES, 0);
    }

    #[test]
    fn bytes_packed_counts_calling_thread_packing() {
        let before = bytes_packed();
        let a = det(7, 64 * 64);
        let b = det(8, 64 * 64);
        let mut c = vec![0.0; 64 * 64];
        let mut packs = PackPair::new();
        gemm_packed(
            64, 64, 64, &a, 1, 64, &b, 1, 64, 1.0, &mut c, 64, &mut packs,
        );
        assert!(bytes_packed() > before, "packing must be counted");
    }

    #[test]
    fn kernel_mode_roundtrip() {
        assert!(use_packed(64, 64, 64));
        assert!(!use_packed(2, 2, 2));
        assert!(!use_packed(0, 64, 64));
        set_kernel_mode(KernelMode::Naive);
        assert_eq!(kernel_mode(), KernelMode::Naive);
        assert!(!use_packed(64, 64, 64));
        set_kernel_mode(KernelMode::Packed);
        assert!(use_packed(2, 2, 2));
        assert!(!use_packed(0, 0, 0), "empty problems never pack");
        set_kernel_mode(KernelMode::Auto);
        assert_eq!(kernel_mode(), KernelMode::Auto);
    }
}
