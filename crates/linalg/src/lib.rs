//! Dense matrix kernels for the distributed Tucker decomposition workspace.
//!
//! This crate is the numerical substrate that stands in for the vendor BLAS /
//! LAPACK stack used by the paper (ESSL `dgemm`, `dsyrk`, `dsyevx`):
//!
//! * [`Matrix`] — a column-major dense `f64` matrix,
//! * [`gemm`] — blocked, optionally rayon-parallel matrix multiply,
//! * [`pack`] — the packed, register-tiled micro-kernel layer (panel packing
//!   into aligned reusable [`PackBuf`]s, `MR×NR` register tiles, `KC/MC/NC`
//!   cache blocking) that `gemm`/`syrk` and the tensor kernels route through
//!   once operands are large enough to amortize packing,
//! * [`syrk`] — symmetric rank-k update `C = A·Aᵀ` exploiting symmetry, with
//!   accumulating (`β`-aware) and raw-slice `AᵀA` entry points backing the
//!   fused Gram kernel in `tucker-tensor`,
//! * [`qr`] — Householder QR factorization (orthonormalization),
//! * [`evd`] — symmetric eigendecomposition via Householder tridiagonalization
//!   followed by the implicit-shift QL iteration, with a cyclic Jacobi solver
//!   as an independent cross-check,
//! * [`svd`] — leading left singular vectors via the Gram-matrix + EVD route
//!   used by the paper (§5).
//!
//! Everything is pure Rust with no BLAS dependency so the workspace builds on
//! any platform; performance is adequate for the scaled experiments and, more
//! importantly, identical across the strategies being compared.

pub mod evd;
pub mod gemm;
pub mod matrix;
#[cfg(feature = "mixed-precision")]
pub mod mixed;
pub mod pack;
pub mod qr;
pub mod svd;
pub mod syrk;

pub use evd::{jacobi_evd, sym_evd, SymEvd};
pub use gemm::{gemm, gemm_into, Transpose};
pub use matrix::Matrix;
#[cfg(feature = "mixed-precision")]
pub use mixed::gemm_mixed;
pub use pack::{bytes_packed, kernel_mode, set_kernel_mode, KernelMode, PackBuf, PackPair};
pub use qr::{householder_qr, orthonormal_columns};
pub use svd::{leading_from_gram, leading_left_singular_vectors, GramSvd};
pub use syrk::{
    mirror_lower, syrk, syrk_aat_lower, syrk_ata_lower, syrk_into, unrolled_dot,
    unrolled_dot_strided,
};

/// Relative tolerance used by the crate's internal convergence checks.
pub const EPS: f64 = 1e-12;
