//! Column-major dense matrix type.
//!
//! The storage convention matches Fortran/BLAS (column-major) because the
//! tensor crate's mode-`n` unfoldings are naturally column-major: a mode-`n`
//! unfolding has the `L_n`-length fibers as its columns, and fibers of the
//! first mode are contiguous in the canonical tensor layout.

use rand::distributions::Distribution;
use rand::Rng;
use std::fmt;

/// A dense, column-major `f64` matrix.
///
/// Element `(i, j)` (row `i`, column `j`) lives at `data[i + j * nrows]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero-filled matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Create an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a closure evaluated at every `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Self { nrows, ncols, data }
    }

    /// Wrap an existing column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "buffer length {} does not match shape {nrows}x{ncols}",
            data.len()
        );
        Self { nrows, ncols, data }
    }

    /// Build from row-major data (convenience for literals in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
        }
        Self::from_fn(nrows, ncols, |i, j| rows[i][j])
    }

    /// Fill with samples from `dist`.
    pub fn random<D: Distribution<f64>, R: Rng>(
        nrows: usize,
        ncols: usize,
        dist: &D,
        rng: &mut R,
    ) -> Self {
        let data = (0..nrows * ncols).map(|_| dist.sample(rng)).collect();
        Self { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Backing column-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing column-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutably borrow column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Copy of row `i` (rows are strided; this allocates).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Keep only the first `k` columns.
    ///
    /// # Panics
    /// Panics if `k > ncols`.
    pub fn truncate_cols(mut self, k: usize) -> Matrix {
        assert!(
            k <= self.ncols,
            "cannot truncate {} cols to {k}",
            self.ncols
        );
        self.data.truncate(self.nrows * k);
        self.ncols = k;
        self
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max absolute elementwise difference to `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `true` if every column has unit norm and distinct columns are
    /// orthogonal to within `tol`.
    pub fn has_orthonormal_columns(&self, tol: f64) -> bool {
        for j in 0..self.ncols {
            for k in j..self.ncols {
                let dot: f64 = self
                    .col(j)
                    .iter()
                    .zip(self.col(k))
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if j == k { 1.0 } else { 0.0 };
                if (dot - expected).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Scale all elements in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.nrows && j < self.ncols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i + j * self.nrows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.nrows && j < self.ncols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i + j * self.nrows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        let show_rows = self.nrows.min(8);
        let show_cols = self.ncols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            if show_cols < self.ncols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.nrows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_orthonormal() {
        let m = Matrix::identity(5);
        assert!(m.has_orthonormal_columns(1e-15));
        assert_eq!(m[(2, 2)], 1.0);
        assert_eq!(m[(2, 3)], 0.0);
    }

    #[test]
    fn column_major_layout() {
        // data[i + j*nrows]
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn truncate_cols_keeps_prefix() {
        let m = Matrix::from_fn(3, 4, |i, j| (i + 10 * j) as f64);
        let t = m.clone().truncate_cols(2);
        assert_eq!(t.shape(), (3, 2));
        for j in 0..2 {
            assert_eq!(t.col(j), m.col(j));
        }
    }

    #[test]
    fn fro_norm_simple() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn col_slices_are_contiguous() {
        let m = Matrix::from_fn(4, 3, |i, j| (j * 4 + i) as f64);
        assert_eq!(m.col(1), &[4.0, 5.0, 6.0, 7.0]);
    }
}
