//! Householder QR factorization.
//!
//! Used for orthonormalizing factor matrices: HOOI only requires the initial
//! factor matrices to have orthonormal columns, and random-init experiments
//! produce them by QR-ing Gaussian matrices.

use crate::matrix::Matrix;

/// Compact QR result: `A = Q · R` with `Q` `m x k` (thin) and `R` `k x n`,
/// `k = min(m, n)`.
#[derive(Clone, Debug)]
pub struct Qr {
    /// Thin orthonormal factor (`m x min(m,n)`).
    pub q: Matrix,
    /// Upper-triangular factor (`min(m,n) x n`).
    pub r: Matrix,
}

/// Householder QR of `a` (`m x n`).
pub fn householder_qr(a: &Matrix) -> Qr {
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut r_full = a.clone();
    // Store the Householder vectors; v[j] has length m - j.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Build Householder vector for column j below the diagonal.
        let mut v: Vec<f64> = (j..m).map(|i| r_full[(i, j)]).collect();
        let alpha = -v[0].signum() * v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if alpha == 0.0 {
            // Column already zero below (and at) the diagonal; identity step.
            vs.push(vec![0.0; m - j]);
            continue;
        }
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        // Apply H = I - 2 v vᵀ / |v|² to the trailing submatrix.
        for c in j..n {
            let dot: f64 = (j..m).map(|i| v[i - j] * r_full[(i, c)]).sum();
            let f = 2.0 * dot / vnorm2;
            for i in j..m {
                r_full[(i, c)] -= f * v[i - j];
            }
        }
        vs.push(v);
    }

    // R = top k rows of transformed matrix.
    let r = Matrix::from_fn(k, n, |i, j| if j >= i { r_full[(i, j)] } else { 0.0 });

    // Q = H_0 H_1 ... H_{k-1} applied to the first k columns of I.
    let mut q = Matrix::from_fn(m, k, |i, j| if i == j { 1.0 } else { 0.0 });
    for j in (0..k).rev() {
        let v = &vs[j];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        for c in 0..k {
            let dot: f64 = (j..m).map(|i| v[i - j] * q[(i, c)]).sum();
            let f = 2.0 * dot / vnorm2;
            for i in j..m {
                q[(i, c)] -= f * v[i - j];
            }
        }
    }
    Qr { q, r }
}

/// Produce an `m x k` matrix with orthonormal columns from an arbitrary
/// `m x k` input (`k <= m`) by thin QR.
///
/// Columns of rank-deficient input are completed to an orthonormal set by
/// the Householder reflections (QR always yields orthonormal Q).
///
/// # Panics
/// Panics if `k > m`.
pub fn orthonormal_columns(a: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    assert!(k <= m, "need at least as many rows ({m}) as columns ({k})");
    householder_qr(a).q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        Matrix::random(r, c, &dist, &mut rng)
    }

    #[test]
    fn qr_reconstructs() {
        for (m, n, seed) in [(6usize, 4usize, 1u64), (4, 4, 2), (10, 7, 3), (30, 5, 4)] {
            let a = rand_mat(m, n, seed);
            let Qr { q, r } = householder_qr(&a);
            assert!(
                q.has_orthonormal_columns(1e-10),
                "Q not orthonormal ({m}x{n})"
            );
            let qr = gemm(&q, Transpose::No, &r, Transpose::No, 1.0);
            assert!(qr.max_abs_diff(&a) < 1e-10, "QR != A ({m}x{n})");
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = rand_mat(8, 6, 9);
        let Qr { r, .. } = householder_qr(&a);
        for j in 0..6 {
            for i in (j + 1)..6 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn orthonormalize_tall() {
        let a = rand_mat(50, 8, 10);
        let q = orthonormal_columns(&a);
        assert_eq!(q.shape(), (50, 8));
        assert!(q.has_orthonormal_columns(1e-10));
    }

    #[test]
    fn orthonormalize_rank_deficient() {
        // Two identical columns: Q must still be orthonormal.
        let mut a = rand_mat(10, 3, 11);
        let c0: Vec<f64> = a.col(0).to_vec();
        a.col_mut(1).copy_from_slice(&c0);
        let q = orthonormal_columns(&a);
        assert!(q.has_orthonormal_columns(1e-9));
    }

    #[test]
    fn identity_is_fixed_point() {
        let a = Matrix::identity(5);
        let q = orthonormal_columns(&a);
        // Q spans the same space; for identity input with our reflector
        // construction Q is ±I — orthonormality is the contract.
        assert!(q.has_orthonormal_columns(1e-12));
    }

    #[test]
    #[should_panic(expected = "at least as many rows")]
    fn wide_input_panics() {
        let a = Matrix::zeros(3, 5);
        let _ = orthonormal_columns(&a);
    }
}
