//! Blocked general matrix-matrix multiply.
//!
//! This is the workspace's `dgemm` replacement. Two implementations live
//! behind the same entry points:
//!
//! * the **packed path** — the register-tiled, panel-packed micro-kernel
//!   nest from [`crate::pack`], used whenever the problem is big enough to
//!   amortize packing ([`crate::pack::use_packed`]); transposed operands are
//!   handled by stride swaps, so no transposed copy is ever materialized;
//! * the **naive path** — a simple axpy-based cache-blocked loop nest, kept
//!   both as the small-operand fast path (packing tiny operands costs more
//!   than it saves) and as the differential baseline the packed kernels are
//!   tested and benched against (`KernelMode::Naive` pins it).
//!
//! Parallelism is a column-panel split of `C` at the outermost level in both
//! paths; packed workers stage through worker-local pack buffers.

use crate::matrix::Matrix;
use crate::pack::{self, PackPair};
use rayon::prelude::*;

/// Whether an operand participates as itself or its transpose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the operand's transpose.
    Yes,
}

impl Transpose {
    /// Logical shape of an operand under this transpose flag.
    #[inline]
    pub fn apply(self, (r, c): (usize, usize)) -> (usize, usize) {
        match self {
            Transpose::No => (r, c),
            Transpose::Yes => (c, r),
        }
    }
}

const MC: usize = 128; // rows of A per block
const KC: usize = 256; // shared dimension per block
const PAR_COL_PANEL: usize = 64; // columns of C per rayon task
const PAR_MIN_WORK: usize = 1 << 16; // below this, stay sequential

/// `C = alpha * op_a(A) * op_b(B)`, allocating the output.
///
/// # Panics
/// Panics if the inner dimensions of `op_a(A)` and `op_b(B)` disagree.
pub fn gemm(a: &Matrix, op_a: Transpose, b: &Matrix, op_b: Transpose, alpha: f64) -> Matrix {
    let (m, ka) = op_a.apply(a.shape());
    let (kb, n) = op_b.apply(b.shape());
    assert_eq!(ka, kb, "gemm inner dimension mismatch: {ka} vs {kb}");
    let mut c = Matrix::zeros(m, n);
    gemm_into(a, op_a, b, op_b, alpha, 0.0, &mut c);
    c
}

/// `C = alpha * op_a(A) * op_b(B) + beta * C` into a caller-provided matrix.
///
/// # Panics
/// Panics on any shape mismatch.
pub fn gemm_into(
    a: &Matrix,
    op_a: Transpose,
    b: &Matrix,
    op_b: Transpose,
    alpha: f64,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = op_a.apply(a.shape());
    let (kb, n) = op_b.apply(b.shape());
    assert_eq!(ka, kb, "gemm inner dimension mismatch: {ka} vs {kb}");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    let k = ka;

    if beta == 0.0 {
        c.as_mut_slice().fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    if pack::use_packed(m, n, k) {
        gemm_into_packed(a, op_a, b, op_b, alpha, c);
        return;
    }

    // Pack op_a(A) once: the packed buffer is read-only and shared across the
    // parallel column panels of C.
    let a_packed = pack_op(a, op_a);
    let work = m * n * k;
    let c_rows = m;
    let c_buf = c.as_mut_slice();

    let do_panel = |(panel_idx, c_panel): (usize, &mut [f64])| {
        let j0 = panel_idx * PAR_COL_PANEL;
        let jn = (c_panel.len() / c_rows).min(n - j0);
        // Pack the needed columns of op_b(B) for this panel.
        let b_panel = pack_op_cols(b, op_b, j0, jn, k);
        kernel(&a_packed, m, k, &b_panel, jn, alpha, c_panel);
    };

    if work >= PAR_MIN_WORK && n > PAR_COL_PANEL {
        c_buf
            .par_chunks_mut(c_rows * PAR_COL_PANEL)
            .enumerate()
            .for_each(do_panel);
    } else {
        c_buf
            .chunks_mut(c_rows * PAR_COL_PANEL)
            .enumerate()
            .for_each(do_panel);
    }
}

/// Strided view of `op(X)`: element `(i, j)` of the logical operand at
/// `x[i·rs + j·cs]` — a stride swap instead of a transposed copy.
#[inline]
fn op_strides(x: &Matrix, op: Transpose) -> (usize, usize) {
    match op {
        Transpose::No => (1, x.nrows()),
        Transpose::Yes => (x.nrows(), 1),
    }
}

/// The packed-path body of [`gemm_into`] (beta already applied, non-empty
/// problem): column-panel parallel, worker-local pack buffers.
fn gemm_into_packed(
    a: &Matrix,
    op_a: Transpose,
    b: &Matrix,
    op_b: Transpose,
    alpha: f64,
    c: &mut Matrix,
) {
    let (m, k) = op_a.apply(a.shape());
    let n = op_b.apply(b.shape()).1;
    let (a_rs, a_cs) = op_strides(a, op_a);
    let (b_rs, b_cs) = op_strides(b, op_b);
    let (a_buf, b_buf) = (a.as_slice(), b.as_slice());
    let c_buf = c.as_mut_slice();

    let work = m * n * k;
    let workers = if work >= PAR_MIN_WORK {
        std::thread::available_parallelism()
            .map(|w| w.get())
            .unwrap_or(1)
            .min(n.div_ceil(pack::NR))
    } else {
        1
    };
    if workers > 1 {
        // Column split of C: per-element accumulation order is unchanged by
        // the partition (blocking over k is column-independent).
        let per = n.div_ceil(workers).max(pack::NR);
        c_buf
            .par_chunks_mut(m * per)
            .enumerate()
            .for_each(|(w, cc)| {
                let j0 = w * per;
                let jn = cc.len() / m;
                // Worker threads are fresh per parallel region (scoped), so a
                // local pair is equivalent to a worker thread-local.
                let mut packs = PackPair::new();
                pack::gemm_packed(
                    m,
                    jn,
                    k,
                    a_buf,
                    a_rs,
                    a_cs,
                    &b_buf[j0 * b_cs..],
                    b_rs,
                    b_cs,
                    alpha,
                    cc,
                    m,
                    &mut packs,
                );
            });
    } else {
        pack::with_thread_packs(|packs| {
            pack::gemm_packed(
                m, n, k, a_buf, a_rs, a_cs, b_buf, b_rs, b_cs, alpha, c_buf, m, packs,
            );
        });
    }
}

/// Pack `op(X)` into a fresh column-major buffer.
fn pack_op(x: &Matrix, op: Transpose) -> Vec<f64> {
    match op {
        Transpose::No => x.as_slice().to_vec(),
        Transpose::Yes => {
            let (r, c) = x.shape();
            // result is c x r, column-major
            let mut out = vec![0.0; r * c];
            for j in 0..r {
                for i in 0..c {
                    out[i + j * c] = x[(j, i)];
                }
            }
            out
        }
    }
}

/// Pack columns `[j0, j0+jn)` of `op(B)` (shape `k x n`) column-major.
fn pack_op_cols(b: &Matrix, op: Transpose, j0: usize, jn: usize, k: usize) -> Vec<f64> {
    let mut out = vec![0.0; k * jn];
    match op {
        Transpose::No => {
            for j in 0..jn {
                out[j * k..(j + 1) * k].copy_from_slice(b.col(j0 + j));
            }
        }
        Transpose::Yes => {
            // op(B)[l, j] = B[j, l]
            for j in 0..jn {
                for l in 0..k {
                    out[l + j * k] = b[(j0 + j, l)];
                }
            }
        }
    }
    out
}

/// Sequential blocked kernel: `C += alpha * A * B` where `A` is `m x k`
/// column-major, `B` is `k x jn` column-major, `C` is `m x jn` column-major.
fn kernel(a: &[f64], m: usize, k: usize, b: &[f64], jn: usize, alpha: f64, c: &mut [f64]) {
    for l0 in (0..k).step_by(KC) {
        let lb = KC.min(k - l0);
        for i0 in (0..m).step_by(MC) {
            let ib = MC.min(m - i0);
            for j in 0..jn {
                let cj = &mut c[j * m..(j + 1) * m];
                let bj = &b[j * k..(j + 1) * k];
                for l in l0..l0 + lb {
                    let blj = alpha * bj[l];
                    if blj == 0.0 {
                        continue;
                    }
                    let al = &a[l * m + i0..l * m + i0 + ib];
                    let cji = &mut cj[i0..i0 + ib];
                    // Inner axpy: auto-vectorizes.
                    for (cv, av) in cji.iter_mut().zip(al) {
                        *cv += blj * av;
                    }
                }
            }
        }
    }
}

/// Matrix-vector product `y = op_a(A) * x`, allocating the output.
///
/// # Panics
/// Panics if `x.len()` does not match the columns of `op_a(A)`.
pub fn gemv(a: &Matrix, op_a: Transpose, x: &[f64]) -> Vec<f64> {
    let (m, k) = op_a.apply(a.shape());
    assert_eq!(x.len(), k, "gemv dimension mismatch");
    let mut y = vec![0.0; m];
    match op_a {
        Transpose::No => {
            for (l, &xl) in x.iter().enumerate() {
                if xl == 0.0 {
                    continue;
                }
                for (yv, av) in y.iter_mut().zip(a.col(l)) {
                    *yv += xl * av;
                }
            }
        }
        Transpose::Yes => {
            for (i, yv) in y.iter_mut().enumerate() {
                *yv = a.col(i).iter().zip(x).map(|(av, xv)| av * xv).sum();
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Naive reference multiply for verification.
    fn naive(a: &Matrix, op_a: Transpose, b: &Matrix, op_b: Transpose) -> Matrix {
        let (m, k) = op_a.apply(a.shape());
        let (_, n) = op_b.apply(b.shape());
        Matrix::from_fn(m, n, |i, j| {
            (0..k)
                .map(|l| {
                    let av = match op_a {
                        Transpose::No => a[(i, l)],
                        Transpose::Yes => a[(l, i)],
                    };
                    let bv = match op_b {
                        Transpose::No => b[(l, j)],
                        Transpose::Yes => b[(j, l)],
                    };
                    av * bv
                })
                .sum()
        })
    }

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(-1.0, 1.0);
        Matrix::random(r, c, &dist, &mut rng)
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm(&a, Transpose::No, &b, Transpose::No, 1.0);
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert!(c.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn all_transpose_combinations_match_naive() {
        for (ta, tb) in [
            (Transpose::No, Transpose::No),
            (Transpose::No, Transpose::Yes),
            (Transpose::Yes, Transpose::No),
            (Transpose::Yes, Transpose::Yes),
        ] {
            // shapes chosen so op(a): 7x5, op(b): 5x9
            let a = match ta {
                Transpose::No => rand_mat(7, 5, 1),
                Transpose::Yes => rand_mat(5, 7, 2),
            };
            let b = match tb {
                Transpose::No => rand_mat(5, 9, 3),
                Transpose::Yes => rand_mat(9, 5, 4),
            };
            let c = gemm(&a, ta, &b, tb, 1.0);
            let r = naive(&a, ta, &b, tb);
            assert!(c.max_abs_diff(&r) < 1e-12, "mismatch for {ta:?},{tb:?}");
        }
    }

    #[test]
    fn blocked_path_matches_naive_on_large() {
        // Sizes crossing MC/KC/PAR boundaries.
        let a = rand_mat(150, 300, 10);
        let b = rand_mat(300, 130, 11);
        let c = gemm(&a, Transpose::No, &b, Transpose::No, 1.0);
        let r = naive(&a, Transpose::No, &b, Transpose::No);
        assert!(c.max_abs_diff(&r) < 1e-10);
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = rand_mat(6, 4, 20);
        let b = rand_mat(4, 5, 21);
        let mut c = rand_mat(6, 5, 22);
        let c0 = c.clone();
        gemm_into(&a, Transpose::No, &b, Transpose::No, 2.0, 3.0, &mut c);
        let r = naive(&a, Transpose::No, &b, Transpose::No);
        for j in 0..5 {
            for i in 0..6 {
                let expect = 2.0 * r[(i, j)] + 3.0 * c0[(i, j)];
                assert!((c[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemv_matches_gemm() {
        let a = rand_mat(8, 6, 30);
        let x: Vec<f64> = (0..6).map(|i| i as f64 * 0.5 - 1.0).collect();
        let y = gemv(&a, Transpose::No, &x);
        let xm = Matrix::from_vec(6, 1, x.clone());
        let ym = gemm(&a, Transpose::No, &xm, Transpose::No, 1.0);
        for i in 0..8 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
        let yt = gemv(&a, Transpose::Yes, &y);
        assert_eq!(yt.len(), 6);
    }

    #[test]
    fn zero_dimension_is_ok() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let c = gemm(&a, Transpose::No, &b, Transpose::No, 1.0);
        assert_eq!(c.shape(), (0, 4));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = gemm(&a, Transpose::No, &b, Transpose::No, 1.0);
    }
}
