//! Mixed-precision GEMM: `f32` **storage**, `f64` **accumulation**
//! (feature `mixed-precision`).
//!
//! The packed kernels in [`crate::pack`] are memory-bound on large operands:
//! every `KC`-deep panel is streamed from the pack buffers once per register
//! tile. Storing the panels in `f32` halves that traffic. The contract is:
//!
//! * operands are `f32` (storage precision — inputs are rounded once, on
//!   entry, by the caller's choice of storage type);
//! * every product and every sum is computed in `f64` (each `f32` converts
//!   exactly to `f64`, so the only rounding versus a pure-`f64` GEMM is the
//!   initial storage rounding of the operands — the accumulation itself
//!   introduces no additional `f32`-level error);
//! * the output is `f64`.
//!
//! This module is deliberately self-contained (its pack buffers are `f32`,
//! so [`crate::pack::PackBuf`] does not apply) and gated: nothing in the
//! workspace's default paths depends on it.

use crate::pack::{KC, MC, MR, NC, NR};

/// `C[m×n] += alpha · A[m×k] · B[k×n]` with `f32` column-major operands and
/// an `f64` column-major output; all arithmetic in `f64`.
///
/// # Panics
/// Panics if a buffer length disagrees with its stated shape.
pub fn gemm_mixed(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], alpha: f64, c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "A must be {m}x{k} column-major");
    assert_eq!(b.len(), k * n, "B must be {k}x{n} column-major");
    assert_eq!(c.len(), m * n, "C must be {m}x{n} column-major");
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let mut apack = vec![0.0f32; m.min(MC).div_ceil(MR) * MR * k.min(KC)];
    let mut bpack = vec![0.0f32; n.min(NC).div_ceil(NR) * NR * k.min(KC)];
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let bp = &mut bpack[..nc.div_ceil(NR) * NR * kc];
            pack_b32(bp, b, k, pc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let ap = &mut apack[..mc.div_ceil(MR) * MR * kc];
                pack_a32(ap, a, m, ic, mc, pc, kc);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bpp = &bp[(jr / NR) * NR * kc..][..NR * kc];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let app = &ap[(ir / MR) * MR * kc..][..MR * kc];
                        let acc = mk32(app, bpp);
                        let tile = &mut c[(ic + ir) + (jc + jr) * m..];
                        for (j, aj) in acc.iter().enumerate().take(nr) {
                            for (i, &v) in aj.iter().enumerate().take(mr) {
                                tile[i + j * m] += alpha * v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `f32`-panel micro-kernel with an `f64` register tile.
#[inline(always)]
fn mk32(ap: &[f32], bp: &[f32]) -> [[f64; MR]; NR] {
    let mut acc = [[0.0f64; MR]; NR];
    for (a8, b4) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for j in 0..NR {
            let bj = f64::from(b4[j]);
            for i in 0..MR {
                acc[j][i] += f64::from(a8[i]) * bj;
            }
        }
    }
    acc
}

fn pack_a32(dst: &mut [f32], a: &[f32], lda: usize, i0: usize, mb: usize, l0: usize, kb: usize) {
    for (p, panel) in dst.chunks_exact_mut(MR * kb).enumerate() {
        let pi = i0 + p * MR;
        let pm = MR.min(i0 + mb - pi);
        for (l, col) in panel.chunks_exact_mut(MR).enumerate() {
            for (i, v) in col.iter_mut().enumerate() {
                *v = if i < pm {
                    a[pi + i + (l0 + l) * lda]
                } else {
                    0.0
                };
            }
        }
    }
}

fn pack_b32(dst: &mut [f32], b: &[f32], ldb: usize, l0: usize, kb: usize, j0: usize, nb: usize) {
    for (p, panel) in dst.chunks_exact_mut(NR * kb).enumerate() {
        let pj = j0 + p * NR;
        let pn = NR.min(j0 + nb - pj);
        for (l, row) in panel.chunks_exact_mut(NR).enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = if j < pn {
                    b[l0 + l + (pj + j) * ldb]
                } else {
                    0.0
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det32(seed: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) as f32
            })
            .collect()
    }

    #[test]
    fn matches_f64_reference_on_promoted_operands() {
        // Because accumulation is f64 and f32→f64 is exact, the result must
        // match a plain f64 GEMM on the promoted operands to f64 roundoff —
        // not merely to f32 precision.
        for &(m, n, k) in &[(5, 3, 4), (17, 9, 40), (MC + 1, NR + 2, KC + 3)] {
            let a = det32(1, m * k);
            let b = det32(2, k * n);
            let mut c = vec![0.0f64; m * n];
            gemm_mixed(m, n, k, &a, &b, 1.0, &mut c);
            for j in 0..n {
                for i in 0..m {
                    let want: f64 = (0..k)
                        .map(|l| f64::from(a[i + l * m]) * f64::from(b[l + j * k]))
                        .sum();
                    let got = c[i + j * m];
                    assert!(
                        (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                        "({i},{j}) in {m}x{n}x{k}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let (m, n, k) = (6, 5, 7);
        let a = det32(3, m * k);
        let b = det32(4, k * n);
        let mut once = vec![0.0f64; m * n];
        gemm_mixed(m, n, k, &a, &b, 1.0, &mut once);
        let mut twice = vec![0.0f64; m * n];
        gemm_mixed(m, n, k, &a, &b, 0.5, &mut twice);
        gemm_mixed(m, n, k, &a, &b, 0.5, &mut twice);
        for (x, y) in twice.iter().zip(&once) {
            assert!((x - y).abs() < 1e-13);
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![1.0f64; 0];
        gemm_mixed(0, 0, 0, &[], &[], 1.0, &mut c);
        let mut c = vec![7.0f64; 4];
        gemm_mixed(2, 2, 0, &[], &[], 1.0, &mut c);
        assert!(c.iter().all(|&x| x == 7.0));
    }
}
