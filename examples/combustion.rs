//! Combustion-science compression: the paper's motivating workload.
//!
//! ```text
//! cargo run --release --example combustion
//! ```
//!
//! Runs the full four-strategy lineup of the paper's evaluation on
//! scaled-down versions of the Table 2 combustion tensors (HCCI, TJLR, SP),
//! filled with a synthetic plume field, and prints a Figure 10c-style
//! breakdown (SVD / TTM computation / TTM communication) per strategy.

use tucker_core::engine::run_distributed_hooi;
use tucker_core::planner::Planner;
use tucker_suite::fields::combustion_field;
use tucker_suite::real::scaled_real_tensors;

fn main() {
    let nranks = 8;
    // Divide spatial axes by 32 so each run takes seconds, not hours; the
    // mode proportions (which drive all planning decisions) are preserved.
    let tensors = scaled_real_tensors(32);

    for rt in &tensors {
        println!("=== {} ({}) on {nranks} ranks ===", rt.name, rt.meta);
        let planner = Planner::new(rt.meta.clone(), nranks);
        let dims: Vec<usize> = rt.meta.input().dims().to_vec();

        for plan in planner.paper_lineup() {
            let field = |c: &[usize]| combustion_field(c, &dims);
            let out = run_distributed_hooi(field, &plan, 1);
            let s = &out.per_sweep[0];
            println!(
                "{:>22}: total {:>9.1?}  svd {:>9.1?}  ttm-comp {:>9.1?}  \
                 ttm-comm {:>9.1?}  regrid {:>9.1?}  err {:.4}",
                plan.name(),
                s.wall,
                s.svd,
                s.ttm_compute,
                s.ttm_comm,
                s.regrid_comm,
                s.error,
            );
        }
        println!();
    }

    println!(
        "Note: per the paper (§6.2), execution cost depends only on metadata; \
         the synthetic plume field only affects the reported error values."
    );
}
