//! Planner explorer: inspect trees, grids and model predictions for any
//! metadata — the paper's planner (§5) as an interactive tool.
//!
//! ```text
//! cargo run --release --example planner_explorer [-- L1,L2,... K1,K2,... P]
//! # e.g.
//! cargo run --release --example planner_explorer -- 400,100,100,50,20 80,80,10,40,10 32
//! ```
//!
//! Defaults to the paper's maximum-gain 5-D tensor (§6.2) on 32 ranks.

use tucker_core::meta::TuckerMeta;
use tucker_core::planner::{GridStrategy, Planner, TreeStrategy};
use tucker_core::tree::{NodeLabel, TtmTree};

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .map(|x| x.trim().parse().expect("bad integer list"))
        .collect()
}

/// Render a tree as an indented outline.
fn render(tree: &TtmTree) -> String {
    let mut out = String::new();
    let mut stack = vec![(tree.root(), 0usize)];
    while let Some((id, depth)) = stack.pop() {
        let pad = "  ".repeat(depth);
        let label = match tree.node(id).label {
            NodeLabel::Root => "T (input)".to_string(),
            NodeLabel::Ttm(n) => format!("x_{n} F{n}^T"),
            NodeLabel::Leaf(n) => format!("=> new factor F~{n}"),
        };
        out.push_str(&format!("{pad}{label}\n"));
        for &c in tree.node(id).children.iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (l, k, p) = if args.len() >= 3 {
        (
            parse_list(&args[0]),
            parse_list(&args[1]),
            args[2].parse().expect("bad P"),
        )
    } else {
        // The tensor with the paper's maximum reported gain (7x overall):
        // 400x100x100x50x20 compressed to 80x80x10x40x10.
        (
            vec![400, 100, 100, 50, 20],
            vec![80, 80, 10, 40, 10],
            32usize,
        )
    };
    let meta = TuckerMeta::new(l, k);
    println!("metadata: {meta},  P = {p}\n");

    let planner = Planner::new(meta.clone(), p);

    for (ts, gs) in [
        (TreeStrategy::chain_k(), GridStrategy::StaticOptimal),
        (TreeStrategy::chain_h(), GridStrategy::StaticOptimal),
        (TreeStrategy::Balanced, GridStrategy::StaticOptimal),
        (TreeStrategy::Optimal, GridStrategy::StaticOptimal),
        (TreeStrategy::Optimal, GridStrategy::Dynamic),
    ] {
        let plan = planner.plan(ts, gs.clone());
        println!("--- {} ---", plan.name());
        println!(
            "TTMs: {}   model load: {:.3} GFLOP   model volume: {:.3} Melems   regrids: {}",
            plan.tree.num_ttms(),
            plan.flops / 1e9,
            plan.volume / 1e6,
            plan.grids.regrid_count(),
        );
        println!("initial grid: {}", plan.grids.initial);
        if plan.grids.regrid_count() > 0 {
            for id in plan.tree.internal_nodes() {
                if plan.grids.regrid[id] {
                    let NodeLabel::Ttm(n) = plan.tree.node(id).label else {
                        unreachable!()
                    };
                    println!(
                        "  regrid before TTM along mode {n}: -> {}",
                        plan.grids.node_grids[id]
                    );
                }
            }
        }
        if matches!(ts, TreeStrategy::Optimal) && gs == GridStrategy::Dynamic {
            println!("\noptimal tree:\n{}", render(&plan.tree));
        }
        println!();
    }

    let lineup = planner.paper_lineup();
    let best = &lineup[3];
    println!("model improvement of (opt-tree, dynamic) over prior heuristics:");
    for other in &lineup[..3] {
        println!(
            "  vs {:>18}: load {:.2}x, volume {:.2}x",
            other.name(),
            other.flops / best.flops,
            if best.volume > 0.0 {
                other.volume / best.volume
            } else {
                f64::INFINITY
            },
        );
    }
}
