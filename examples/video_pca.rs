//! Tensor PCA on synthetic video — the TensorFaces-style use case from the
//! paper's introduction (computer vision).
//!
//! ```text
//! cargo run --release --example video_pca
//! ```
//!
//! Builds a height × width × frames tensor containing a moving bright blob
//! over a static textured background, Tucker-compresses it, and shows how
//! the leading frame-mode factor captures the motion (principal components
//! across time) while spatial factors capture the scene.

use std::time::Instant;
use tucker_core::hooi::hooi_invocation_gauss_seidel;
use tucker_core::meta::TuckerMeta;
use tucker_core::sthosvd::sthosvd;
use tucker_core::{full_recompute, tucker_outofcore, LoopCfg, SlidingTucker};
use tucker_suite::fields::video_field;
use tucker_tensor::norm::fro_norm_sq;
use tucker_tensor::{DenseTensor, Shape, TtmWorkspace};

fn main() {
    let dims = [32usize, 32, 16]; // height x width x frames
    let t = DenseTensor::from_fn(Shape::from(dims), |c| video_field(c, &dims));

    println!(
        "video tensor: {}  ({} elements)",
        t.shape(),
        t.cardinality()
    );

    for ranks in [(2usize, 2usize, 2usize), (4, 4, 3), (8, 8, 4)] {
        let meta = TuckerMeta::new(dims.to_vec(), vec![ranks.0, ranks.1, ranks.2]);
        let init = sthosvd(&t, &meta);
        let e0 = init.error_from_core_norm(fro_norm_sq(&t));
        // Polish with two monotone HOOI sweeps.
        let out1 = hooi_invocation_gauss_seidel(&t, &meta, &init);
        let out2 = hooi_invocation_gauss_seidel(&t, &meta, &out1.decomposition);
        println!(
            "core {:?}: STHOSVD err {:.4} -> HOOI err {:.4} (storage compression {:.1}x)",
            [ranks.0, ranks.1, ranks.2],
            e0,
            out2.error,
            out2.decomposition.storage_compression_ratio(),
        );

        if ranks.0 == 4 {
            // The frame-mode factor is time-PCA: its leading column is the
            // dominant temporal pattern. Print it like a tiny spectrum.
            let f_time = &out2.decomposition.factors[2];
            println!("  leading temporal component (frames 0..16):");
            print!("  ");
            for fr in 0..16 {
                let v = f_time[(fr, 0)];
                print!("{:+.2} ", v);
            }
            println!();
        }
    }

    println!(
        "\nHigher multilinear ranks track the moving blob more faithfully; the \
         frame-mode factor matrix is exactly a PCA basis across time."
    );

    // --- Out-of-core tiled sweep: the whole 64-frame stream at once, with
    // the workspace pool capped at a quarter of the tensor's footprint.
    // Only frame-slab tiles ever stream through the kernels.
    let total_frames = 64usize;
    let stream_dims = [32usize, 32, total_frames];
    let stream = DenseTensor::from_fn(Shape::from(stream_dims), |c| video_field(c, &stream_dims));
    let tensor_bytes = stream.cardinality() * std::mem::size_of::<f64>();
    let meta = TuckerMeta::new(stream_dims.to_vec(), vec![4, 4, 6]);
    let cfg = LoopCfg {
        max_sweeps: 20,
        tol: 1e-9,
    };
    let mut ws = TtmWorkspace::with_limit(tensor_bytes / 4);
    let t0 = Instant::now();
    let ooc = tucker_outofcore(&stream, &meta, 8, cfg, &mut ws);
    println!(
        "\nout-of-core tiled Tucker of the full {}-frame stream (tile = 8 frames):",
        total_frames
    );
    println!(
        "  err {:.4} after {} sweeps in {:.1?}; pooled scratch {} KiB (cap {} KiB, tensor {} KiB)",
        ooc.errors.last().unwrap(),
        ooc.errors.len(),
        t0.elapsed(),
        ws.pooled_bytes() / 1024,
        tensor_bytes / 4 / 1024,
        tensor_bytes / 1024,
    );

    // --- Incremental sliding-window Tucker: the camera never stops. Track
    // a 32-frame window over a 48x48 stream, advancing 2 frames per push.
    // Each push is one in-place memmove + slab write, a slab-cost Gram
    // downdate/update (never a window-sized Gram), and a HOOI
    // re-convergence warm-started from the refreshed factors — against the
    // cold STHOSVD + HOOI recompute of the same window.
    let sliding_dims = [48usize, 48, 96];
    let window_len = 32usize;
    let slab_len = 2usize;
    let window0 = DenseTensor::from_fn(Shape::new(vec![48, 48, window_len]), |c| {
        video_field(c, &sliding_dims)
    });
    let mut st = SlidingTucker::new(window0, vec![4, 4, 3], cfg);
    println!(
        "\nsliding {window_len}-frame window over a 48x48x{} stream, {slab_len} new frames per push:",
        sliding_dims[2]
    );
    let mut inc_total = 0.0f64;
    let mut full_total = 0.0f64;
    let mut push = 1usize;
    let mut max_delta = 0.0f64;
    while push * slab_len + window_len <= sliding_dims[2] {
        let t0 = push * slab_len;
        let slab = DenseTensor::from_fn(Shape::new(vec![48, 48, slab_len]), |c| {
            video_field(
                &[c[0], c[1], c[2] + t0 + window_len - slab_len],
                &sliding_dims,
            )
        });
        let tick = Instant::now();
        let e_inc = st.push_slab(&slab);
        let inc_time = tick.elapsed();
        let tick = Instant::now();
        let (_, e_full, cold_sweeps) = full_recompute(st.window(), st.meta(), cfg);
        let full_time = tick.elapsed();
        inc_total += inc_time.as_secs_f64();
        full_total += full_time.as_secs_f64();
        max_delta = max_delta.max((e_inc - e_full).abs());
        if push.is_multiple_of(8) {
            println!(
                "  frames {:2}..{:2}: incremental err {:.4} ({} sweeps, {:7.1?})  cold err {:.4} ({} sweeps, {:7.1?})",
                t0,
                t0 + window_len,
                e_inc,
                st.sweeps_last_push(),
                inc_time,
                e_full,
                cold_sweeps,
                full_time,
            );
        }
        push += 1;
    }
    println!(
        "  {} pushes: incremental total {:.3}s vs cold recompute total {:.3}s ({:.2}x), max |err delta| {:.1e}",
        push - 1,
        inc_total,
        full_total,
        full_total / inc_total.max(1e-12),
        max_delta,
    );
}
