//! Tensor PCA on synthetic video — the TensorFaces-style use case from the
//! paper's introduction (computer vision).
//!
//! ```text
//! cargo run --release --example video_pca
//! ```
//!
//! Builds a height × width × frames tensor containing a moving bright blob
//! over a static textured background, Tucker-compresses it, and shows how
//! the leading frame-mode factor captures the motion (principal components
//! across time) while spatial factors capture the scene.

use tucker_core::hooi::hooi_invocation_gauss_seidel;
use tucker_core::meta::TuckerMeta;
use tucker_core::sthosvd::sthosvd;
use tucker_suite::fields::video_field;
use tucker_tensor::norm::fro_norm_sq;
use tucker_tensor::{DenseTensor, Shape};

fn main() {
    let dims = [32usize, 32, 16]; // height x width x frames
    let t = DenseTensor::from_fn(Shape::from(dims), |c| video_field(c, &dims));

    println!(
        "video tensor: {}  ({} elements)",
        t.shape(),
        t.cardinality()
    );

    for ranks in [(2usize, 2usize, 2usize), (4, 4, 3), (8, 8, 4)] {
        let meta = TuckerMeta::new(dims.to_vec(), vec![ranks.0, ranks.1, ranks.2]);
        let init = sthosvd(&t, &meta);
        let e0 = init.error_from_core_norm(fro_norm_sq(&t));
        // Polish with two monotone HOOI sweeps.
        let out1 = hooi_invocation_gauss_seidel(&t, &meta, &init);
        let out2 = hooi_invocation_gauss_seidel(&t, &meta, &out1.decomposition);
        println!(
            "core {:?}: STHOSVD err {:.4} -> HOOI err {:.4} (storage compression {:.1}x)",
            [ranks.0, ranks.1, ranks.2],
            e0,
            out2.error,
            out2.decomposition.storage_compression_ratio(),
        );

        if ranks.0 == 4 {
            // The frame-mode factor is time-PCA: its leading column is the
            // dominant temporal pattern. Print it like a tiny spectrum.
            let f_time = &out2.decomposition.factors[2];
            println!("  leading temporal component (frames 0..16):");
            print!("  ");
            for fr in 0..16 {
                let v = f_time[(fr, 0)];
                print!("{:+.2} ", v);
            }
            println!();
        }
    }

    println!(
        "\nHigher multilinear ranks track the moving blob more faithfully; the \
         frame-mode factor matrix is exactly a PCA basis across time."
    );
}
