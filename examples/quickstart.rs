//! Quickstart: compress a dense 4-way tensor with the full pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic 24×24×24×12 tensor, plans the optimal TTM-tree and
//! dynamic gridding for 8 simulated ranks, runs STHOSVD + distributed HOOI,
//! and prints the error, compression and communication statistics.

use tucker_core::engine::run_distributed_hooi;
use tucker_core::meta::TuckerMeta;
use tucker_core::plan::{FlopVolumeModel, GridStrategy, Planner, SearchBudget, TreeStrategy};
use tucker_suite::fields::combustion_field;

fn main() {
    // 1. Describe the problem: input shape, core (compressed) shape.
    let dims = [24usize, 24, 24, 12];
    let meta = TuckerMeta::new(dims.to_vec(), vec![6, 6, 6, 4]);
    println!(
        "problem: {meta}  (compression {:.0}x)",
        meta.compression_ratio()
    );

    // 2. Plan: the joint grid x tree x order search ranks the DP winner
    // against the paper's heuristic lineup under the chosen cost model.
    let planner = Planner::new(meta.clone(), 8);
    let ranked = planner.ranked_plans(&FlopVolumeModel, &SearchBudget::default());
    println!("ranked plans under the {} model:", ranked.model);
    for s in &ranked.plans {
        println!(
            "  {:>22}: cost {:.3e}  ({} TTMs, {} regrids)",
            s.plan.name(),
            s.cost,
            s.plan.tree.num_ttms(),
            s.plan.grids.regrid_count()
        );
    }
    let plan = ranked.best().plan.clone();
    println!(
        "plan {}: {} TTMs, predicted {:.2} MFLOP, predicted volume {:.0} elements, {} regrids",
        plan.name(),
        plan.tree.num_ttms(),
        plan.flops / 1e6,
        plan.volume,
        plan.grids.regrid_count(),
    );

    // Compare against the naive baseline.
    let naive = planner.plan(TreeStrategy::chain_k(), GridStrategy::StaticOptimal);
    println!(
        "baseline {}: predicted {:.2} MFLOP, volume {:.0} elements",
        naive.name(),
        naive.flops / 1e6,
        naive.volume
    );
    println!(
        "model speedups: {:.2}x load, {:.2}x volume",
        naive.flops / plan.flops,
        if plan.volume > 0.0 {
            naive.volume / plan.volume
        } else {
            f64::INFINITY
        }
    );

    // 3. Execute: distributed HOOI on the simulated 8-rank universe.
    let field = move |c: &[usize]| combustion_field(c, &dims);
    let out = run_distributed_hooi(field, &plan, 3);
    for (i, s) in out.per_sweep.iter().enumerate() {
        println!(
            "sweep {i}: error {:.5}  ttm {:?} (comm {:?})  svd {:?}  regrid {:?}  \
             volume ttm/regrid/gram = {}/{}/{} elems",
            s.error,
            s.ttm_compute,
            s.ttm_comm,
            s.svd,
            s.regrid_comm,
            s.ttm_volume,
            s.regrid_volume,
            s.gram_volume,
        );
    }

    let d = out.expect_decomposition();
    println!(
        "final: core {}  storage compression {:.1}x  factors orthonormal: {}",
        d.core.shape(),
        d.storage_compression_ratio(),
        d.factors_orthonormal(1e-8),
    );
}
